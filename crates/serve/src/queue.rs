//! A bounded multi-producer job queue with explicit backpressure.
//!
//! The bound covers *outstanding* work — items still queued **plus**
//! items popped but not yet marked done via
//! [`BoundedQueue::task_done`]. That is the quantity a client cares
//! about when the server says `Busy`: "how much work is ahead of me",
//! not "how long is the ready list right now". A submission over the
//! bound is rejected immediately ([`PushError::Full`]); nothing ever
//! blocks on the way in, and nothing queues unboundedly.

use crate::deadline::{deadline_after, remaining};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a push was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The outstanding-work bound is reached; retry after work drains.
    Full {
        /// Outstanding items at rejection time.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The queue was closed; no further work is accepted.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    outstanding: usize,
    closed: bool,
}

/// The bounded queue. `T` is the work token (the server queues
/// [`crate::protocol::JobId`]s, keeping the payload in its own
/// registry).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    // lock:rank(20, serve.queue.state)
    state: Mutex<State<T>>,
    // lock:rank(21, serve.queue.ready)
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounding outstanding work to `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (such a queue could accept nothing).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least one job");
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                outstanding: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// A worker panicking while holding the lock must not wedge every
    /// other thread; the state (counters and a token list) stays
    /// consistent under any interleaving, so recover the guard.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Accepts `item` unless the queue is full or closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] over capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.outstanding >= self.capacity {
            return Err(PushError::Full {
                depth: st.outstanding,
                capacity: self.capacity,
            });
        }
        st.outstanding += 1;
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next item, waiting up to `timeout`. Returns `None` on
    /// timeout or when the queue is closed and empty. A popped item
    /// stays *outstanding* until [`BoundedQueue::task_done`].
    ///
    /// A `timeout` too large to represent as a deadline
    /// (`Duration::MAX` and friends) saturates into "no deadline": the
    /// pop waits until an item arrives or the queue closes, instead of
    /// panicking on `Instant` overflow.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = deadline_after(timeout);
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = match remaining(deadline) {
                Some(Duration::ZERO) => return None,
                Some(left) => {
                    self.ready
                        .wait_timeout(st, left)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => self.ready.wait(st).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }

    /// Marks one previously popped item as finished, freeing its
    /// capacity slot.
    ///
    /// # Contract
    ///
    /// Every `task_done` must pair with exactly one earlier successful
    /// pop. An unmatched call would silently leak capacity (a slot
    /// freed that was never held corrupts the `Busy{depth, capacity}`
    /// accounting), so debug builds assert; release builds saturate at
    /// zero rather than wrapping, keeping the counter merely stale
    /// instead of catastrophically wrong.
    pub fn task_done(&self) {
        let mut st = self.lock();
        debug_assert!(
            st.outstanding > 0,
            "task_done without a matching pop: outstanding is already 0"
        );
        st.outstanding = st.outstanding.saturating_sub(1);
        drop(st);
        self.ready.notify_all();
    }

    /// Closes the queue: further pushes fail, waiting poppers drain
    /// the remaining items and then receive `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Outstanding items (queued + popped-but-not-done).
    pub fn depth(&self) -> usize {
        self.lock().outstanding
    }

    /// The configured outstanding-work bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.lock().outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u64>::new(0);
    }

    #[test]
    fn popped_items_stay_outstanding_until_done() {
        let q = BoundedQueue::new(2);
        q.try_push(1u64).expect("slot 1");
        q.try_push(2u64).expect("slot 2");
        assert_eq!(
            q.try_push(3),
            Err(PushError::Full {
                depth: 2,
                capacity: 2
            })
        );
        // Popping does not free the slot...
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert_eq!(q.depth(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full { .. })));
        // ...task_done does.
        q.task_done();
        assert_eq!(q.depth(), 1);
        q.try_push(3).expect("slot freed");
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(3));
        q.task_done();
        q.task_done();
        assert!(q.is_idle());
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q = BoundedQueue::<u64>::new(1);
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn close_rejects_pushes_and_drains_poppers() {
        let q = BoundedQueue::new(4);
        q.try_push(7u64).expect("open");
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(8), Err(PushError::Closed));
        // The already-accepted item still drains...
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(7));
        // ...then poppers get None immediately (closed + empty).
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), None);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn duration_max_pop_does_not_panic_and_still_pops() {
        // Regression: `Instant::now() + Duration::MAX` used to panic on
        // entry; the saturated deadline must behave as "wait forever".
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(9u64).expect("slot");
        assert_eq!(h.join().expect("popper thread"), Some(9));
    }

    #[test]
    fn duration_max_pop_unblocks_on_close() {
        // "No deadline" must still honor close: the popper drains out
        // with None instead of waiting forever on a dead queue.
        let q = std::sync::Arc::new(BoundedQueue::<u64>::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().expect("popper thread"), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "task_done without a matching pop")]
    fn unmatched_task_done_is_a_contract_violation() {
        // The contract: every task_done pairs with one successful pop.
        // Debug builds trap the mismatch loudly; release builds
        // saturate at zero (documented on `task_done`).
        let q = BoundedQueue::<u64>::new(1);
        q.task_done();
    }

    #[test]
    fn waiting_popper_wakes_on_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u64).expect("slot");
        assert_eq!(h.join().expect("popper thread"), Some(42));
    }
}
