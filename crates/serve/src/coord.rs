//! The `pimgfx-coord` coordinator: the distributed serving plane's
//! front door.
//!
//! The coordinator speaks the same `PGRPC` protocol as `pimgfx-serve`
//! and accepts a superset of its requests: single-column `SubmitJob`s
//! (wrapped into one-column matrices) and multi-column `SubmitMatrix`
//! jobs. Each accepted job is split into per-column shards
//! ([`crate::shard::shards`]), every shard is routed to the downstream
//! worker owning its stream key (rendezvous hashing,
//! [`crate::shard::choose_worker`]) so worker-side `SceneCache` /
//! `FragmentStreamCache` columns stay hot across jobs, and the
//! per-worker manifests are merged — byte-level, cells untouched —
//! into one deterministic matrix manifest.
//!
//! Failure policy, in order of preference:
//!
//! * **Worker death** (connect failure, transport error mid-dialog, or
//!   a `ShuttingDown` reply): the worker is marked dead, the shard
//!   re-hashes to the next live owner, and the dispatch retries with
//!   linear backoff, up to a bounded attempt budget. When every worker
//!   is dead the health table resets to all-alive once (an optimistic
//!   re-probe so a restarted fleet recovers) before the budget rules.
//! * **Worker saturation** (`Busy{depth, capacity}`): the shard backs
//!   off and retries its owner — rerouting would only cool a cache —
//!   and a still-`Busy` worker after the attempt budget fails the job
//!   with a saturation message. Coordinator-level admission uses the
//!   same semantics: over its own outstanding-job bound, a submission
//!   answers `Busy` immediately.
//! * **Deterministic job failures** (validation errors, audit
//!   failures) are never retried: the same bytes would fail again.
//!
//! Like the worker daemon, the coordinator drains gracefully: a
//! `Shutdown` request or [`DrainHandle::drain`] finishes accepted
//! jobs, flushes results, refuses new submissions, and lets
//! [`Coordinator::run`] return so the process exits 0.

use crate::client::Client;
use crate::job;
use crate::protocol::{CacheStats, JobId, JobSpec, JobState, MatrixSpec, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::server::DrainHandle;
use crate::shard::{choose_worker, manifest_cells, matrix_manifest_json, shards, stream_key};
use pimgfx_bench::{HarnessResult, SECTIONS};
use pimgfx_types::{ConfigError, Error, FxHashMap};
use pimgfx_workloads::{Game, Workload};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Downstream `pimgfx-serve` worker addresses (`HOST:PORT`). The
    /// list order is part of the routing function: changing it
    /// reshuffles column ownership.
    pub workers: Vec<String>,
    /// Frames simulated per cell, fleet-wide. Must match the workers'
    /// `--frames` — it labels merged manifests and the config digest.
    pub frames: usize,
    /// Bound on outstanding matrix jobs (queued + running);
    /// submissions over it get `Busy`.
    pub queue_capacity: usize,
    /// Default per-shard deadline in milliseconds forwarded to workers
    /// when a spec says 0; 0 here means "no deadline".
    pub default_deadline_ms: u64,
    /// When set, every finished job's merged manifest is flushed to
    /// `<dir>/job-<id>.json`.
    pub results_dir: Option<PathBuf>,
    /// Read/write timeout on accepted client sockets (see
    /// [`crate::server::ServeConfig::io_timeout`]).
    pub io_timeout: Duration,
    /// Read/write timeout on sockets to workers; a worker that stalls
    /// longer mid-dialog counts as dead and its shard re-hashes.
    pub worker_io_timeout: Duration,
    /// Dispatch attempts per shard (first try included) before the
    /// job fails.
    pub max_attempts: u32,
    /// Base backoff between dispatch attempts; attempt `n` waits
    /// `n * retry_backoff` (linear, deterministic).
    pub retry_backoff: Duration,
    /// Interval between worker status polls while a shard runs.
    pub poll: Duration,
    /// Forward a `Shutdown` to every worker after the coordinator's
    /// own drain finishes (one-command teardown of the whole tree).
    pub drain_workers: bool,
}

impl Default for CoordConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            frames: 2,
            queue_capacity: 4,
            default_deadline_ms: 0,
            results_dir: None,
            io_timeout: Duration::from_secs(30),
            worker_io_timeout: Duration::from_secs(30),
            max_attempts: 4,
            retry_backoff: Duration::from_millis(100),
            poll: Duration::from_millis(25),
            drain_workers: false,
        }
    }
}

/// Matrix-job execution phase, kept in the coordinator's registry.
/// `Running.done`/`total` count **shards** (columns), the
/// coordinator's unit of work.
#[derive(Debug)]
enum Phase {
    Queued,
    Running { done: Arc<AtomicU32>, total: u32 },
    Done { manifest: String, cells: u32 },
    Failed(String),
    Cancelled(String),
}

#[derive(Debug)]
struct JobEntry {
    spec: MatrixSpec,
    cancel: Arc<AtomicBool>,
    phase: Phase,
}

#[derive(Debug)]
struct Shared {
    config: CoordConfig,
    queue: BoundedQueue<JobId>,
    // lock:rank(10, coord.jobs)
    jobs: Mutex<FxHashMap<JobId, JobEntry>>,
    /// Worker liveness flags, indexed like `config.workers`. Held only
    /// for snapshot/flip operations — never across I/O.
    // lock:rank(15, coord.worker-health)
    alive: Mutex<Vec<bool>>,
    next_id: AtomicU64,
    draining: Arc<AtomicBool>,
}

impl Shared {
    /// Registry state is plain data; recover from a poisoned lock
    /// rather than wedging every connection.
    fn jobs(&self) -> MutexGuard<'_, FxHashMap<JobId, JobEntry>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_phase(&self, id: JobId, phase: Phase) {
        if let Some(entry) = self.jobs().get_mut(&id) {
            entry.phase = phase;
        }
    }

    /// Snapshot of the liveness flags.
    fn alive_snapshot(&self) -> Vec<bool> {
        self.alive
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Marks a worker dead; when that kills the last live worker, the
    /// whole table resets to alive (optimistic re-probe) so a
    /// restarted fleet is rediscovered instead of being shunned
    /// forever.
    fn mark_dead(&self, index: usize) {
        let mut alive = self.alive.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(flag) = alive.get_mut(index) {
            *flag = false;
        }
        if alive.iter().all(|a| !a) {
            alive.iter_mut().for_each(|a| *a = true);
        }
    }
}

/// A bound, not-yet-running coordinator.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the configuration is
    /// invalid (no workers, zero frames/queue capacity/attempts).
    pub fn bind(config: CoordConfig) -> HarnessResult<Self> {
        if config.workers.is_empty() {
            return Err(ConfigError::new(
                "pimgfx-coord",
                "at least one downstream worker address is required",
            )
            .into());
        }
        if config.frames == 0 {
            return Err(ConfigError::new("pimgfx-coord", "frames must be at least 1").into());
        }
        if config.queue_capacity == 0 {
            return Err(
                ConfigError::new("pimgfx-coord", "queue capacity must be at least 1").into(),
            );
        }
        if config.max_attempts == 0 {
            return Err(ConfigError::new("pimgfx-coord", "max attempts must be at least 1").into());
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::io(format!("binding {}", config.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io("reading bound address", e))?;
        let queue = BoundedQueue::new(config.queue_capacity);
        let worker_count = config.workers.len();
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(Shared {
                config,
                queue,
                jobs: Mutex::new(FxHashMap::default()),
                alive: Mutex::new(vec![true; worker_count]),
                next_id: AtomicU64::new(0),
                draining: Arc::new(AtomicBool::new(false)),
            }),
        })
    }

    /// The actually bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that triggers a graceful drain from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle::new(Arc::clone(&self.shared.draining))
    }

    /// Runs the coordinator until drained: accepts connections,
    /// schedules matrix jobs, and returns `Ok(())` once a drain
    /// request has been honored (all accepted jobs finished, results
    /// flushed, and — with `drain_workers` — every worker asked to
    /// drain too).
    ///
    /// # Errors
    ///
    /// Fails on fatal listener errors or a panicked scheduler thread.
    pub fn run(self) -> HarnessResult<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::io("setting listener nonblocking", e))?;
        let shared = self.shared;
        let scheduler = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&sh))
        };
        let fatal = loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let sh = Arc::clone(&shared);
                    // Detached on purpose: a drain must not wait on
                    // idle client connections, only on accepted jobs.
                    std::thread::spawn(move || handle_connection(&sh, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if shared.draining.load(Ordering::SeqCst) && shared.queue.is_idle() {
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.draining.store(true, Ordering::SeqCst);
                    break Some(Error::io("accepting connection", e));
                }
            }
        };
        shared.queue.close();
        if scheduler.join().is_err() {
            return Err(ConfigError::new("pimgfx-coord", "scheduler thread panicked").into());
        }
        if shared.config.drain_workers {
            for addr in &shared.config.workers {
                // Best-effort: a dead worker has nothing to drain.
                if let Ok(mut c) = worker_client(&shared.config, addr) {
                    let _ = c.shutdown();
                }
            }
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn scheduler_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(id) => {
                execute_matrix(shared, id);
                shared.queue.task_done();
            }
            None => {
                let drained = shared.draining.load(Ordering::SeqCst) && shared.queue.is_idle();
                if drained || shared.queue.is_closed() {
                    break;
                }
            }
        }
    }
}

/// Terminal outcome of one shard dispatch.
enum ShardOutcome {
    /// The shard's worker manifest (column label kept for diagnostics).
    Done(String),
    Failed(String),
    Cancelled(String),
}

/// One dialog failure, classified for the retry policy.
enum WorkerFailure {
    /// Connect/transport failure or a draining worker: mark dead,
    /// re-hash, retry.
    Dead(String),
    /// `Busy{depth, capacity}` backpressure: back off and retry the
    /// same worker (it owns the caches).
    Busy { depth: u32, capacity: u32 },
    /// Deterministic failure (validation, audit, job failure): do not
    /// retry.
    Job(String),
    /// The worker reports the shard cancelled.
    Cancelled(String),
}

fn worker_client(config: &CoordConfig, addr: &str) -> Result<Client, String> {
    let timeout = (config.worker_io_timeout > Duration::ZERO).then_some(config.worker_io_timeout);
    Client::connect_with_io_timeout(addr, timeout).map_err(|e| format!("connecting {addr}: {e}"))
}

/// Runs one shard's full dialog against one worker: submit, poll to a
/// terminal state, fetch the manifest.
fn try_worker(
    shared: &Shared,
    addr: &str,
    spec: &JobSpec,
    cancel: &AtomicBool,
) -> Result<String, WorkerFailure> {
    let mut client = worker_client(&shared.config, addr).map_err(WorkerFailure::Dead)?;
    let wid = match client.submit(spec) {
        Ok(Response::Submitted(wid)) => wid,
        Ok(Response::Busy { depth, capacity }) => {
            return Err(WorkerFailure::Busy { depth, capacity })
        }
        Ok(Response::ShuttingDown) => {
            return Err(WorkerFailure::Dead(format!("{addr} is draining")))
        }
        Ok(Response::Error(m)) => return Err(WorkerFailure::Job(m)),
        Ok(other) => {
            return Err(WorkerFailure::Dead(format!(
                "{addr} answered a submit with {other:?}"
            )))
        }
        Err(e) => return Err(WorkerFailure::Dead(format!("submitting to {addr}: {e}"))),
    };
    let mut cancel_sent = false;
    loop {
        if cancel.load(Ordering::SeqCst) && !cancel_sent {
            // Forward the client's cancellation; the worker honors it
            // between cells and we keep polling to the terminal state.
            let _ = client.cancel(wid);
            cancel_sent = true;
        }
        match client.status(wid) {
            Ok(JobState::Queued | JobState::Running { .. }) => {
                std::thread::sleep(shared.config.poll)
            }
            Ok(JobState::Done { .. }) => break,
            Ok(JobState::Failed(m)) => return Err(WorkerFailure::Job(m)),
            Ok(JobState::Cancelled(m)) => return Err(WorkerFailure::Cancelled(m)),
            Err(e) => {
                return Err(WorkerFailure::Dead(format!(
                    "polling {addr} for worker job {wid}: {e}"
                )))
            }
        }
    }
    client
        .fetch_manifest(wid)
        .map_err(|e| WorkerFailure::Dead(format!("fetching from {addr}: {e}")))
}

/// Dispatches one shard with the retry/re-hash/shed policy described
/// in the module docs.
fn dispatch_shard(shared: &Shared, id: JobId, spec: &JobSpec, cancel: &AtomicBool) -> ShardOutcome {
    let key = stream_key(spec);
    let mut last = String::new();
    for attempt in 1..=shared.config.max_attempts {
        if cancel.load(Ordering::SeqCst) {
            return ShardOutcome::Cancelled(format!(
                "shard {key} cancelled by client before dispatch"
            ));
        }
        if attempt > 1 {
            // Linear, deterministic backoff: attempt n waits (n-1)·base.
            std::thread::sleep(shared.config.retry_backoff * (attempt - 1));
        }
        let alive = shared.alive_snapshot();
        let Some(wi) = choose_worker(&key, &shared.config.workers, &alive) else {
            // Unreachable in practice: mark_dead resets an all-dead
            // table. Treat defensively as a failed attempt.
            last = "no live workers".to_string();
            continue;
        };
        let addr = &shared.config.workers[wi];
        // Operational visibility: one routing line per attempt on
        // stderr, the daemon's diagnostic channel (CI greps these).
        #[allow(clippy::print_stderr)]
        {
            eprintln!(
                "pimgfx-coord: job {id}: shard {key} -> worker {wi} ({addr}) attempt {attempt}"
            );
        }
        match try_worker(shared, addr, spec, cancel) {
            Ok(manifest) => return ShardOutcome::Done(manifest),
            Err(WorkerFailure::Dead(m)) => {
                #[allow(clippy::print_stderr)]
                {
                    eprintln!("pimgfx-coord: job {id}: shard {key}: worker {wi} dead: {m}");
                }
                shared.mark_dead(wi);
                last = m;
            }
            Err(WorkerFailure::Busy { depth, capacity }) => {
                last = format!("{addr} saturated ({depth}/{capacity} outstanding)");
            }
            Err(WorkerFailure::Job(m)) => return ShardOutcome::Failed(format!("shard {key}: {m}")),
            Err(WorkerFailure::Cancelled(m)) => {
                return ShardOutcome::Cancelled(format!("shard {key}: {m}"))
            }
        }
    }
    ShardOutcome::Failed(format!(
        "shard {key}: gave up after {} attempts; last error: {last}",
        shared.config.max_attempts
    ))
}

/// Runs one matrix job to a terminal phase. Never panics: every
/// failure path lands in `Phase::Failed`/`Phase::Cancelled` so clients
/// always get an answer.
fn execute_matrix(shared: &Shared, id: JobId) {
    let (spec, cancel, done) = {
        let mut jobs = shared.jobs();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.cancel.load(Ordering::SeqCst) {
            entry.phase = Phase::Cancelled("cancelled before start".to_string());
            return;
        }
        let total = u32::try_from(shards(&entry.spec).len()).unwrap_or(u32::MAX);
        let done = Arc::new(AtomicU32::new(0));
        entry.phase = Phase::Running {
            done: Arc::clone(&done),
            total,
        };
        (entry.spec.clone(), Arc::clone(&entry.cancel), done)
    };

    let mut shard_specs = shards(&spec);
    if spec.deadline_ms == 0 && shared.config.default_deadline_ms > 0 {
        for s in &mut shard_specs {
            s.deadline_ms = shared.config.default_deadline_ms;
        }
    }

    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_specs
            .iter()
            .map(|s| {
                let cancel = &cancel;
                let done = &done;
                scope.spawn(move || {
                    let outcome = dispatch_shard(shared, id, s, cancel);
                    done.fetch_add(1, Ordering::SeqCst);
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(o) => o,
                Err(_) => ShardOutcome::Failed("shard dispatch thread panicked".to_string()),
            })
            .collect()
    });

    let mut manifests = Vec::new();
    for outcome in outcomes {
        match outcome {
            ShardOutcome::Done(m) => manifests.push(m),
            ShardOutcome::Cancelled(m) => {
                shared.set_phase(id, Phase::Cancelled(m));
                return;
            }
            ShardOutcome::Failed(m) => {
                shared.set_phase(id, Phase::Failed(m));
                return;
            }
        }
    }

    let mut cells = Vec::new();
    for m in &manifests {
        match manifest_cells(m) {
            Ok(lines) => cells.extend(lines),
            Err(e) => {
                shared.set_phase(id, Phase::Failed(format!("merging worker manifests: {e}")));
                return;
            }
        }
    }
    let cache = fleet_stats(shared);
    let manifest = match matrix_manifest_json(id, &spec, shared.config.frames, &cells, &cache) {
        Ok(m) => m,
        Err(e) => {
            shared.set_phase(id, Phase::Failed(format!("writing merged manifest: {e}")));
            return;
        }
    };
    if let Some(dir) = &shared.config.results_dir {
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join(format!("job-{id}.json")), &manifest));
        if let Err(e) = write {
            shared.set_phase(
                id,
                Phase::Failed(format!("writing result to {}: {e}", dir.display())),
            );
            return;
        }
    }
    let cell_count = u32::try_from(cells.len()).unwrap_or(u32::MAX);
    shared.set_phase(
        id,
        Phase::Done {
            manifest,
            cells: cell_count,
        },
    );
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let timeout = (shared.config.io_timeout > Duration::ZERO).then_some(shared.config.io_timeout);
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match crate::protocol::read_request(&mut reader) {
            Ok(Some(req)) => {
                let resp = dispatch(shared, &req);
                if crate::protocol::write_response(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) if crate::server::is_stall(&e) => break,
            Err(e) => {
                let _ = crate::protocol::write_response(
                    &mut writer,
                    &Response::Error(format!("protocol error: {e}")),
                );
                break;
            }
        }
    }
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    match req {
        Request::SubmitMatrix(spec) => submit(shared, spec),
        // A single-column job is a one-column matrix: the coordinator
        // is a drop-in superset of a worker for submissions.
        Request::SubmitJob(spec) => submit(
            shared,
            &MatrixSpec {
                columns: vec![(spec.workload, spec.resolution)],
                variants: spec.variants.clone(),
                sections: spec.sections.clone(),
                trace: spec.trace,
                deadline_ms: spec.deadline_ms,
            },
        ),
        Request::JobStatus(id) => status(shared, *id),
        Request::FetchResult(id) => fetch(shared, *id),
        Request::CancelJob(id) => cancel(shared, *id),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Stats => Response::Stats(fleet_stats(shared)),
    }
}

/// Sums the cache counters of every reachable worker (best-effort: a
/// dead worker contributes zeros — the counters exist for eviction
/// visibility, not exact accounting).
fn fleet_stats(shared: &Shared) -> CacheStats {
    let mut sum = CacheStats::default();
    for addr in &shared.config.workers {
        let Ok(mut c) = worker_client(&shared.config, addr) else {
            continue;
        };
        if let Ok(s) = c.stats() {
            sum.scene_evictions += s.scene_evictions;
            sum.stream_hits += s.stream_hits;
            sum.stream_misses += s.stream_misses;
            sum.stream_evictions += s.stream_evictions;
        }
    }
    sum
}

fn submit(shared: &Shared, spec: &MatrixSpec) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::ShuttingDown;
    }
    if spec.columns.is_empty() {
        return Response::Error("matrix selects no columns".to_string());
    }
    let matrix = Game::benchmark_matrix();
    for &(workload, res) in &spec.columns {
        match workload {
            Workload::Game(game) => {
                if !matrix.contains(&(game, res)) {
                    return Response::Error(format!(
                        "{} is not a Table II benchmark column",
                        pimgfx_bench::Harness::column_label(workload, res)
                    ));
                }
            }
            // Synthetic columns are open-ended: any valid spec at any
            // resolution is renderable.
            Workload::Synthetic(syn) => {
                if let Err(e) = syn.validate() {
                    return Response::Error(format!("invalid synthetic workload: {e}"));
                }
            }
        }
    }
    for s in &spec.sections {
        if !SECTIONS.contains(&s.as_str()) {
            return Response::Error(format!(
                "unknown section `{s}` (expected one of: {})",
                SECTIONS.join(", ")
            ));
        }
    }
    if job::expand_variants(&spec.variants, &spec.sections).is_empty() {
        return Response::Error(
            "job selects no simulation cells; pass variants or figure sections".to_string(),
        );
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    shared.jobs().insert(
        id,
        JobEntry {
            spec: spec.clone(),
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Phase::Queued,
        },
    );
    match shared.queue.try_push(id) {
        Ok(()) => Response::Submitted(id),
        Err(PushError::Full { depth, capacity }) => {
            shared.jobs().remove(&id);
            Response::Busy {
                depth: u32::try_from(depth).unwrap_or(u32::MAX),
                capacity: u32::try_from(capacity).unwrap_or(u32::MAX),
            }
        }
        Err(PushError::Closed) => {
            shared.jobs().remove(&id);
            Response::ShuttingDown
        }
    }
}

fn state_of(entry: &JobEntry) -> JobState {
    match &entry.phase {
        Phase::Queued => JobState::Queued,
        Phase::Running { done, total } => JobState::Running {
            done: done.load(Ordering::SeqCst),
            total: *total,
        },
        Phase::Done { cells, .. } => JobState::Done { cells: *cells },
        Phase::Failed(m) => JobState::Failed(m.clone()),
        Phase::Cancelled(m) => JobState::Cancelled(m.clone()),
    }
}

fn status(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => Response::Status(state_of(entry)),
        None => Response::Error(format!("unknown job {id}")),
    }
}

fn fetch(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => match &entry.phase {
            Phase::Done { manifest, .. } => Response::JobResult {
                manifest_json: manifest.clone(),
            },
            Phase::Failed(m) => Response::Error(format!("job {id} failed: {m}")),
            Phase::Cancelled(m) => Response::Error(format!("job {id} was cancelled: {m}")),
            Phase::Queued | Phase::Running { .. } => {
                Response::Error(format!("job {id} is not finished"))
            }
        },
        None => Response::Error(format!("unknown job {id}")),
    }
}

fn cancel(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => {
            entry.cancel.store(true, Ordering::SeqCst);
            Response::Status(state_of(entry))
        }
        None => Response::Error(format!("unknown job {id}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_validates_configuration() {
        // No workers is the distinguishing invalid configuration.
        assert!(Coordinator::bind(CoordConfig::default()).is_err());
        let one_worker = || CoordConfig {
            workers: vec!["127.0.0.1:1".to_string()],
            ..CoordConfig::default()
        };
        let bad_frames = CoordConfig {
            frames: 0,
            ..one_worker()
        };
        assert!(Coordinator::bind(bad_frames).is_err());
        let bad_queue = CoordConfig {
            queue_capacity: 0,
            ..one_worker()
        };
        assert!(Coordinator::bind(bad_queue).is_err());
        let bad_attempts = CoordConfig {
            max_attempts: 0,
            ..one_worker()
        };
        assert!(Coordinator::bind(bad_attempts).is_err());
        let server = Coordinator::bind(one_worker()).expect("bind 127.0.0.1:0");
        assert_ne!(server.local_addr().port(), 0);
    }
}
