//! `PGRPC` — the versioned, length-prefixed binary wire protocol.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [magic "PGRPC" (5 bytes)] [version u32] [kind u32] [len u32] [payload]
//! ```
//!
//! All integers are little-endian, reusing the public primitive codecs
//! of the `PGTR` trace format (`pimgfx_workloads::trace_io`). Strings
//! are a `u32` byte length followed by UTF-8 bytes. A reader rejects
//! bad magic, any version other than [`VERSION`], payloads larger than
//! [`MAX_PAYLOAD`], truncated frames, and trailing payload bytes — all
//! as [`ProtocolError::Format`], never a panic or an unbounded
//! allocation.
//!
//! The frame-definition region below (between the
//! `protocol:frames:begin/end` markers) is snapshotted by the
//! `protocol-version` rule of `cargo xtask lint`: structural changes
//! without a [`VERSION`] bump fail the lint (see
//! `crates/serve/protocol.snapshot` and `docs/SERVING.md`).

use pimgfx::Design;
use pimgfx_bench::Variant;
use pimgfx_workloads::trace_io::{
    get_f32, get_u32, get_workload, put_f32, put_u32, put_workload, resolution_from_tag,
    resolution_tag,
};
use pimgfx_workloads::{Resolution, Workload};
use std::fmt;
use std::io::{self, Read, Write};

// protocol:frames:begin

/// Protocol magic; distinct from the `PGTR` trace magic.
pub const MAGIC: [u8; 5] = *b"PGRPC";

/// Wire-format version. Bump on ANY structural change to the frame
/// definitions in this region, and update
/// `crates/serve/protocol.snapshot` (the `protocol-version` lint rule
/// enforces both).
///
/// v2 added [`MatrixSpec`] and [`Request::SubmitMatrix`] (wire kind 6)
/// for the `pimgfx-coord` sharding coordinator.
///
/// v3 widened the benchmark-column identity from a bare game tag to a
/// [`Workload`] tag (games 0–4 unchanged on the wire; synthetic 5
/// followed by the spec parameters, reusing the `PGTR` workload
/// codec), and added [`Request::Stats`] (wire kind 7) /
/// [`Response::Stats`] (kind 107) exposing worker cache counters.
pub const VERSION: u32 = 3;

/// Hard cap on a frame's declared payload length (16 MiB): a corrupt
/// or hostile length field must not drive a huge allocation.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Server-assigned job identifier, unique per daemon process.
pub type JobId = u64;

/// A job submission: one benchmark column plus the variant set to
/// simulate over it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Benchmark workload: a Table II game or a procedural
    /// `syn.<params>` spec.
    pub workload: Workload,
    /// Frame resolution; must be in the game's Table II set (synthetic
    /// workloads accept any resolution).
    pub resolution: Resolution,
    /// Explicit design variants to simulate.
    pub variants: Vec<Variant>,
    /// Figure/section names (`fig11`, ...) whose variant sets are
    /// added to `variants` (deduplicated by label).
    pub sections: Vec<String>,
    /// When true, a failed cycle-conservation audit fails the job.
    pub trace: bool,
    /// Per-job deadline in milliseconds (0 = server default; the
    /// server treats a configured 0 as "no deadline"). Cancellation
    /// is checked between cells, not mid-cell.
    pub deadline_ms: u64,
}

/// A matrix submission: several benchmark columns sharing one variant
/// set. Only the `pimgfx-coord` coordinator accepts these — it shards
/// the matrix into per-column [`JobSpec`]s and routes each shard to
/// the `pimgfx-serve` worker owning that column's stream key.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Benchmark columns (workload + resolution) to simulate.
    pub columns: Vec<(Workload, Resolution)>,
    /// Explicit design variants to simulate on every column.
    pub variants: Vec<Variant>,
    /// Figure/section names whose variant sets are added to
    /// `variants` (deduplicated by label).
    pub sections: Vec<String>,
    /// When true, a failed cycle-conservation audit fails the job.
    pub trace: bool,
    /// Per-shard deadline in milliseconds, forwarded to workers
    /// (0 = worker default).
    pub deadline_ms: u64,
}

/// A worker's cache counters, cumulative since process start. Queried
/// via [`Request::Stats`] — the coordinator sums them across workers
/// at matrix merge time, and `pimgfx-loadgen` reports them in
/// `BENCH_serve.json` (wire: four u64s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Scene-cache evictions (0 while the cache is unbounded).
    pub scene_evictions: u64,
    /// Frontend-stream cache hits.
    pub stream_hits: u64,
    /// Frontend-stream cache misses.
    pub stream_misses: u64,
    /// Frontend-stream cache evictions (0 while unbounded).
    pub stream_evictions: u64,
}

/// Client-to-server messages. Wire kinds 1–7, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; answered with `Submitted`, `Busy`, or an error.
    SubmitJob(JobSpec),
    /// Ask for a job's current [`JobState`].
    JobStatus(JobId),
    /// Fetch a finished job's manifest JSON.
    FetchResult(JobId),
    /// Request cancellation; takes effect between cells.
    CancelJob(JobId),
    /// Begin a graceful drain: finish accepted work, refuse new jobs,
    /// then exit.
    Shutdown,
    /// Submit a multi-column matrix job (coordinator only; a plain
    /// `pimgfx-serve` worker answers with an error).
    SubmitMatrix(MatrixSpec),
    /// Ask for the server's cumulative [`CacheStats`] (a coordinator
    /// answers with the sum over its workers).
    Stats,
}

/// Lifecycle of a submitted job. Wire tags 0–4, in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the scheduler.
    Queued,
    /// Cells in flight.
    Running {
        /// Cells started so far.
        done: u32,
        /// Total cells in the job.
        total: u32,
    },
    /// All cells finished; the manifest is fetchable.
    Done {
        /// Cells simulated.
        cells: u32,
    },
    /// The job failed; the message says why.
    Failed(String),
    /// The job was cancelled (client request or deadline).
    Cancelled(String),
}

/// Server-to-client messages. Wire kinds 101–107, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Job accepted under this identifier.
    Submitted(JobId),
    /// Backpressure: the outstanding-job queue is full; retry later.
    Busy {
        /// Jobs currently outstanding (queued + running).
        depth: u32,
        /// The queue's capacity bound.
        capacity: u32,
    },
    /// A job's current state.
    Status(JobState),
    /// A finished job's result.
    JobResult {
        /// The deterministic per-job manifest (schema v3 cells).
        manifest_json: String,
    },
    /// Request-level failure (unknown job, invalid spec, ...).
    Error(String),
    /// The server is draining and refuses new work.
    ShuttingDown,
    /// The server's cumulative cache counters.
    Stats(CacheStats),
}

// protocol:frames:end

/// Errors reading or writing `PGRPC` frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying transport failure.
    Io(io::Error),
    /// Structurally invalid frame (bad magic, version, truncation,
    /// trailing bytes, unknown tags, ...).
    Format(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::Format(m) => write!(f, "invalid PGRPC frame: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Format(_) => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Convenience alias for protocol operations.
pub type ProtoResult<T> = Result<T, ProtocolError>;

/// Maps an I/O error occurring mid-frame: an early EOF is a malformed
/// stream ([`ProtocolError::Format`]), anything else stays I/O.
fn truncated(e: io::Error, what: &str) -> ProtocolError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ProtocolError::Format(format!("truncated frame: stream ended inside {what}"))
    } else {
        ProtocolError::Io(e)
    }
}

fn fmt_err<T>(msg: impl Into<String>) -> ProtoResult<T> {
    Err(ProtocolError::Format(msg.into()))
}

// ---- payload primitives (little-endian, shared style with PGTR) ----

fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u64(cur: &mut &[u8]) -> ProtoResult<u64> {
    let mut b = [0u8; 8];
    cur.read_exact(&mut b)
        .map_err(|e| truncated(e, "a u64 field"))?;
    Ok(u64::from_le_bytes(b))
}

fn pget_u32(cur: &mut &[u8]) -> ProtoResult<u32> {
    get_u32(cur).map_err(|e| truncated(e, "a u32 field"))
}

fn pget_f32(cur: &mut &[u8]) -> ProtoResult<f32> {
    get_f32(cur).map_err(|e| truncated(e, "an f32 field"))
}

fn put_str<W: Write>(w: &mut W, s: &str) -> ProtoResult<()> {
    let Ok(len) = u32::try_from(s.len()) else {
        return fmt_err("string longer than u32::MAX bytes");
    };
    put_u32(w, len)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed string. The length is validated against the
/// remaining payload *before* any allocation, so a corrupt length can
/// never drive an oversized buffer.
fn get_str(cur: &mut &[u8]) -> ProtoResult<String> {
    let len = pget_u32(cur)? as usize;
    if len > cur.len() {
        return fmt_err(format!(
            "declared string length {len} exceeds the {} remaining payload bytes",
            cur.len()
        ));
    }
    let (head, tail) = cur.split_at(len);
    let s = match std::str::from_utf8(head) {
        Ok(s) => s.to_string(),
        Err(_) => return fmt_err("string payload is not valid UTF-8"),
    };
    *cur = tail;
    Ok(s)
}

fn put_bool<W: Write>(w: &mut W, v: bool) -> io::Result<()> {
    put_u32(w, u32::from(v))
}

fn get_bool(cur: &mut &[u8]) -> ProtoResult<bool> {
    match pget_u32(cur)? {
        0 => Ok(false),
        1 => Ok(true),
        other => fmt_err(format!("bool field must be 0 or 1, got {other}")),
    }
}

// ---- variant and spec codecs ----

fn put_variant<W: Write>(w: &mut W, v: Variant) -> io::Result<()> {
    match v {
        Variant::Design(Design::Baseline) => put_u32(w, 0),
        Variant::Design(Design::BPim) => put_u32(w, 1),
        Variant::Design(Design::STfim) => put_u32(w, 2),
        Variant::Design(Design::ATfim) => put_u32(w, 3),
        Variant::AnisoOff => put_u32(w, 4),
        Variant::AtfimThreshold(f) => {
            put_u32(w, 5)?;
            put_f32(w, f)
        }
        Variant::AtfimNoRecalc => put_u32(w, 6),
        Variant::AtfimNoConsolidation => put_u32(w, 7),
        Variant::AtfimNoCompression => put_u32(w, 8),
    }
}

fn get_variant(cur: &mut &[u8]) -> ProtoResult<Variant> {
    match pget_u32(cur)? {
        0 => Ok(Variant::Design(Design::Baseline)),
        1 => Ok(Variant::Design(Design::BPim)),
        2 => Ok(Variant::Design(Design::STfim)),
        3 => Ok(Variant::Design(Design::ATfim)),
        4 => Ok(Variant::AnisoOff),
        5 => Ok(Variant::AtfimThreshold(pget_f32(cur)?)),
        6 => Ok(Variant::AtfimNoRecalc),
        7 => Ok(Variant::AtfimNoConsolidation),
        8 => Ok(Variant::AtfimNoCompression),
        other => fmt_err(format!("unknown variant tag {other}")),
    }
}

/// Maps a `PGTR` workload-codec failure (unknown tag, invalid
/// synthetic parameters, truncation) into a frame-format error.
fn pget_workload(cur: &mut &[u8]) -> ProtoResult<Workload> {
    get_workload(cur).map_err(|e| ProtocolError::Format(format!("{e}")))
}

fn put_spec<W: Write>(w: &mut W, spec: &JobSpec) -> ProtoResult<()> {
    put_workload(w, spec.workload)?;
    put_u32(w, resolution_tag(spec.resolution))?;
    let Ok(nvar) = u32::try_from(spec.variants.len()) else {
        return fmt_err("too many variants");
    };
    put_u32(w, nvar)?;
    for &v in &spec.variants {
        put_variant(w, v)?;
    }
    let Ok(nsec) = u32::try_from(spec.sections.len()) else {
        return fmt_err("too many sections");
    };
    put_u32(w, nsec)?;
    for s in &spec.sections {
        put_str(w, s)?;
    }
    put_bool(w, spec.trace)?;
    put_u64(w, spec.deadline_ms)?;
    Ok(())
}

fn get_spec(cur: &mut &[u8]) -> ProtoResult<JobSpec> {
    let workload = pget_workload(cur)?;
    let resolution =
        resolution_from_tag(pget_u32(cur)?).map_err(|e| ProtocolError::Format(format!("{e}")))?;
    let nvar = pget_u32(cur)? as usize;
    let mut variants = Vec::new();
    for _ in 0..nvar {
        variants.push(get_variant(cur)?);
    }
    let nsec = pget_u32(cur)? as usize;
    let mut sections = Vec::new();
    for _ in 0..nsec {
        sections.push(get_str(cur)?);
    }
    let trace = get_bool(cur)?;
    let deadline_ms = get_u64(cur)?;
    Ok(JobSpec {
        workload,
        resolution,
        variants,
        sections,
        trace,
        deadline_ms,
    })
}

fn put_matrix<W: Write>(w: &mut W, spec: &MatrixSpec) -> ProtoResult<()> {
    let Ok(ncol) = u32::try_from(spec.columns.len()) else {
        return fmt_err("too many columns");
    };
    put_u32(w, ncol)?;
    for &(workload, res) in &spec.columns {
        put_workload(w, workload)?;
        put_u32(w, resolution_tag(res))?;
    }
    let Ok(nvar) = u32::try_from(spec.variants.len()) else {
        return fmt_err("too many variants");
    };
    put_u32(w, nvar)?;
    for &v in &spec.variants {
        put_variant(w, v)?;
    }
    let Ok(nsec) = u32::try_from(spec.sections.len()) else {
        return fmt_err("too many sections");
    };
    put_u32(w, nsec)?;
    for s in &spec.sections {
        put_str(w, s)?;
    }
    put_bool(w, spec.trace)?;
    put_u64(w, spec.deadline_ms)?;
    Ok(())
}

fn get_matrix(cur: &mut &[u8]) -> ProtoResult<MatrixSpec> {
    let ncol = pget_u32(cur)? as usize;
    let mut columns = Vec::new();
    for _ in 0..ncol {
        let workload = pget_workload(cur)?;
        let res = resolution_from_tag(pget_u32(cur)?)
            .map_err(|e| ProtocolError::Format(format!("{e}")))?;
        columns.push((workload, res));
    }
    let nvar = pget_u32(cur)? as usize;
    let mut variants = Vec::new();
    for _ in 0..nvar {
        variants.push(get_variant(cur)?);
    }
    let nsec = pget_u32(cur)? as usize;
    let mut sections = Vec::new();
    for _ in 0..nsec {
        sections.push(get_str(cur)?);
    }
    let trace = get_bool(cur)?;
    let deadline_ms = get_u64(cur)?;
    Ok(MatrixSpec {
        columns,
        variants,
        sections,
        trace,
        deadline_ms,
    })
}

fn put_state<W: Write>(w: &mut W, state: &JobState) -> ProtoResult<()> {
    match state {
        JobState::Queued => put_u32(w, 0)?,
        JobState::Running { done, total } => {
            put_u32(w, 1)?;
            put_u32(w, *done)?;
            put_u32(w, *total)?;
        }
        JobState::Done { cells } => {
            put_u32(w, 2)?;
            put_u32(w, *cells)?;
        }
        JobState::Failed(m) => {
            put_u32(w, 3)?;
            put_str(w, m)?;
        }
        JobState::Cancelled(m) => {
            put_u32(w, 4)?;
            put_str(w, m)?;
        }
    }
    Ok(())
}

fn get_state(cur: &mut &[u8]) -> ProtoResult<JobState> {
    match pget_u32(cur)? {
        0 => Ok(JobState::Queued),
        1 => Ok(JobState::Running {
            done: pget_u32(cur)?,
            total: pget_u32(cur)?,
        }),
        2 => Ok(JobState::Done {
            cells: pget_u32(cur)?,
        }),
        3 => Ok(JobState::Failed(get_str(cur)?)),
        4 => Ok(JobState::Cancelled(get_str(cur)?)),
        other => fmt_err(format!("unknown job-state tag {other}")),
    }
}

// ---- framing ----

/// Assembles one complete frame (header + payload) as a single buffer
/// so a frame always hits the socket in one `write_all`.
fn frame(kind: u32, payload: &[u8]) -> ProtoResult<Vec<u8>> {
    if payload.len() > MAX_PAYLOAD {
        return fmt_err(format!(
            "payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})",
            payload.len()
        ));
    }
    let mut out = Vec::with_capacity(17 + payload.len());
    out.extend_from_slice(&MAGIC);
    let _ = put_u32(&mut out, VERSION);
    let _ = put_u32(&mut out, kind);
    // Cast is safe: length validated against MAX_PAYLOAD above.
    let _ = put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads one frame header + payload. `Ok(None)` means the peer closed
/// the stream cleanly *before* the first byte of a frame; an EOF
/// anywhere later is a `Format` error.
fn read_frame<R: Read>(r: &mut R) -> ProtoResult<Option<(u32, Vec<u8>)>> {
    let mut magic = [0u8; 5];
    let mut filled = 0;
    while filled < magic.len() {
        match r.read(&mut magic[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return fmt_err("truncated frame: stream ended inside the magic");
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    if magic != MAGIC {
        return fmt_err(format!("bad magic {magic:?} (expected {MAGIC:?})"));
    }
    let version = get_u32(r).map_err(|e| truncated(e, "the version field"))?;
    if version != VERSION {
        return fmt_err(format!(
            "unsupported protocol version {version} (this build speaks {VERSION})"
        ));
    }
    let kind = get_u32(r).map_err(|e| truncated(e, "the kind field"))?;
    let len = get_u32(r).map_err(|e| truncated(e, "the length field"))? as usize;
    if len > MAX_PAYLOAD {
        return fmt_err(format!(
            "declared payload length {len} exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        ));
    }
    // Bounded read: `take` caps what a lying peer can make us buffer at
    // the validated length, and a short stream surfaces as Format.
    let mut payload = Vec::with_capacity(len.min(1 << 16));
    let read = r
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(|e| truncated(e, "the payload"))?;
    if read != len {
        return fmt_err(format!(
            "truncated frame: payload ended after {read} of {len} declared bytes"
        ));
    }
    Ok(Some((kind, payload)))
}

fn reject_trailing(cur: &[u8], what: &str) -> ProtoResult<()> {
    if cur.is_empty() {
        Ok(())
    } else {
        fmt_err(format!(
            "{} trailing bytes after a complete {what} payload",
            cur.len()
        ))
    }
}

/// Writes one request frame.
///
/// # Errors
///
/// Fails on transport errors or an over-sized payload.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> ProtoResult<()> {
    let mut payload = Vec::new();
    let kind = match req {
        Request::SubmitJob(spec) => {
            put_spec(&mut payload, spec)?;
            1
        }
        Request::JobStatus(id) => {
            put_u64(&mut payload, *id)?;
            2
        }
        Request::FetchResult(id) => {
            put_u64(&mut payload, *id)?;
            3
        }
        Request::CancelJob(id) => {
            put_u64(&mut payload, *id)?;
            4
        }
        Request::Shutdown => 5,
        Request::SubmitMatrix(spec) => {
            put_matrix(&mut payload, spec)?;
            6
        }
        Request::Stats => 7,
    };
    w.write_all(&frame(kind, &payload)?)?;
    w.flush()?;
    Ok(())
}

/// Reads one request frame; `Ok(None)` on a clean disconnect.
///
/// # Errors
///
/// Transport errors as [`ProtocolError::Io`]; malformed frames
/// (including truncation) as [`ProtocolError::Format`].
pub fn read_request<R: Read>(r: &mut R) -> ProtoResult<Option<Request>> {
    let Some((kind, payload)) = read_frame(r)? else {
        return Ok(None);
    };
    let mut cur: &[u8] = &payload;
    let req = match kind {
        1 => Request::SubmitJob(get_spec(&mut cur)?),
        2 => Request::JobStatus(get_u64(&mut cur)?),
        3 => Request::FetchResult(get_u64(&mut cur)?),
        4 => Request::CancelJob(get_u64(&mut cur)?),
        5 => Request::Shutdown,
        6 => Request::SubmitMatrix(get_matrix(&mut cur)?),
        7 => Request::Stats,
        other => return fmt_err(format!("unknown request kind {other}")),
    };
    reject_trailing(cur, "request")?;
    Ok(Some(req))
}

/// Writes one response frame.
///
/// # Errors
///
/// Fails on transport errors or an over-sized payload.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> ProtoResult<()> {
    let mut payload = Vec::new();
    let kind = match resp {
        Response::Submitted(id) => {
            put_u64(&mut payload, *id)?;
            101
        }
        Response::Busy { depth, capacity } => {
            put_u32(&mut payload, *depth)?;
            put_u32(&mut payload, *capacity)?;
            102
        }
        Response::Status(state) => {
            put_state(&mut payload, state)?;
            103
        }
        Response::JobResult { manifest_json } => {
            put_str(&mut payload, manifest_json)?;
            104
        }
        Response::Error(m) => {
            put_str(&mut payload, m)?;
            105
        }
        Response::ShuttingDown => 106,
        Response::Stats(s) => {
            put_u64(&mut payload, s.scene_evictions)?;
            put_u64(&mut payload, s.stream_hits)?;
            put_u64(&mut payload, s.stream_misses)?;
            put_u64(&mut payload, s.stream_evictions)?;
            107
        }
    };
    w.write_all(&frame(kind, &payload)?)?;
    w.flush()?;
    Ok(())
}

/// Reads one response frame. Unlike [`read_request`], a disconnect
/// before the frame is an error: a client awaiting a reply must not
/// mistake a dropped connection for silence.
///
/// # Errors
///
/// Transport errors as [`ProtocolError::Io`]; malformed frames, early
/// EOF, and unknown kinds as [`ProtocolError::Format`].
pub fn read_response<R: Read>(r: &mut R) -> ProtoResult<Response> {
    let Some((kind, payload)) = read_frame(r)? else {
        return fmt_err("connection closed while awaiting a response");
    };
    let mut cur: &[u8] = &payload;
    let resp = match kind {
        101 => Response::Submitted(get_u64(&mut cur)?),
        102 => Response::Busy {
            depth: pget_u32(&mut cur)?,
            capacity: pget_u32(&mut cur)?,
        },
        103 => Response::Status(get_state(&mut cur)?),
        104 => Response::JobResult {
            manifest_json: get_str(&mut cur)?,
        },
        105 => Response::Error(get_str(&mut cur)?),
        106 => Response::ShuttingDown,
        107 => Response::Stats(CacheStats {
            scene_evictions: get_u64(&mut cur)?,
            stream_hits: get_u64(&mut cur)?,
            stream_misses: get_u64(&mut cur)?,
            stream_evictions: get_u64(&mut cur)?,
        }),
        other => return fmt_err(format!("unknown response kind {other}")),
    };
    reject_trailing(cur, "response")?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_validate_length_before_allocating() {
        // Declared length far beyond the actual payload.
        let mut payload = Vec::new();
        put_u32(&mut payload, u32::MAX).expect("vec write");
        payload.extend_from_slice(b"abc");
        let mut cur: &[u8] = &payload;
        let err = get_str(&mut cur).expect_err("must reject");
        assert!(matches!(err, ProtocolError::Format(_)), "{err}");
        assert!(format!("{err}").contains("remaining payload"), "{err}");
    }

    #[test]
    fn bool_rejects_out_of_range() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 7).expect("vec write");
        let mut cur: &[u8] = &payload;
        assert!(get_bool(&mut cur).is_err());
    }

    #[test]
    fn frame_rejects_oversized_payload() {
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(frame(1, &big).is_err());
    }

    #[test]
    fn clean_disconnect_is_none_for_requests_error_for_responses() {
        let empty: &[u8] = &[];
        assert!(matches!(read_request(&mut { empty }), Ok(None)));
        let empty: &[u8] = &[];
        assert!(read_response(&mut { empty }).is_err());
    }
}
