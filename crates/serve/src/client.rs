//! Blocking `PGRPC` client, used by the `pimgfx-client` CLI and the
//! integration tests.

use crate::deadline::{deadline_after, expired};
use crate::protocol::{
    self, CacheStats, JobId, JobSpec, JobState, MatrixSpec, ProtoResult, ProtocolError, Request,
    Response,
};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `pimgfx-serve` daemon. Requests are strictly
/// serialized: every [`Client::call`] writes one frame and reads one
/// reply.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Fails on connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ProtoResult<Self> {
        Self::connect_with_io_timeout(addr, None)
    }

    /// Connects to a daemon and applies a read/write timeout to the
    /// socket (`None` disables it; `Some(Duration::ZERO)` is rejected
    /// by the OS). The coordinator uses this on worker dialogs so a
    /// stalled worker counts as dead instead of pinning a shard.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or if the timeout cannot be set.
    pub fn connect_with_io_timeout<A: ToSocketAddrs>(
        addr: A,
        io_timeout: Option<Duration>,
    ) -> ProtoResult<Self> {
        let writer = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        writer
            .set_read_timeout(io_timeout)
            .map_err(ProtocolError::Io)?;
        writer
            .set_write_timeout(io_timeout)
            .map_err(ProtocolError::Io)?;
        let reader = BufReader::new(writer.try_clone().map_err(ProtocolError::Io)?);
        Ok(Self { reader, writer })
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// Transport or framing failures.
    pub fn call(&mut self, req: &Request) -> ProtoResult<Response> {
        protocol::write_request(&mut self.writer, req)?;
        protocol::read_response(&mut self.reader)
    }

    /// Submits a job; the raw response distinguishes `Submitted`,
    /// `Busy` backpressure, and `ShuttingDown`.
    ///
    /// # Errors
    ///
    /// Transport or framing failures.
    pub fn submit(&mut self, spec: &JobSpec) -> ProtoResult<Response> {
        self.call(&Request::SubmitJob(spec.clone()))
    }

    /// Submits a multi-column matrix job to a `pimgfx-coord`
    /// coordinator; a plain `pimgfx-serve` worker answers with an
    /// error reply.
    ///
    /// # Errors
    ///
    /// Transport or framing failures.
    pub fn submit_matrix(&mut self, spec: &MatrixSpec) -> ProtoResult<Response> {
        self.call(&Request::SubmitMatrix(spec.clone()))
    }

    /// Fetches a job's current state.
    ///
    /// # Errors
    ///
    /// Transport failures, or a server-side error reply (unknown job)
    /// surfaced as [`ProtocolError::Format`].
    pub fn status(&mut self, id: JobId) -> ProtoResult<JobState> {
        match self.call(&Request::JobStatus(id))? {
            Response::Status(state) => Ok(state),
            Response::Error(e) => Err(ProtocolError::Format(e)),
            other => unexpected(&other),
        }
    }

    /// Fetches a finished job's manifest JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, or a server-side error reply (job unknown,
    /// unfinished, failed, or cancelled) as [`ProtocolError::Format`].
    pub fn fetch_manifest(&mut self, id: JobId) -> ProtoResult<String> {
        match self.call(&Request::FetchResult(id))? {
            Response::JobResult { manifest_json } => Ok(manifest_json),
            Response::Error(e) => Err(ProtocolError::Format(e)),
            other => unexpected(&other),
        }
    }

    /// Requests cancellation of a job (takes effect between cells).
    ///
    /// # Errors
    ///
    /// Transport failures, or an unknown job as
    /// [`ProtocolError::Format`].
    pub fn cancel(&mut self, id: JobId) -> ProtoResult<JobState> {
        match self.call(&Request::CancelJob(id))? {
            Response::Status(state) => Ok(state),
            Response::Error(e) => Err(ProtocolError::Format(e)),
            other => unexpected(&other),
        }
    }

    /// Fetches the server's cumulative cache counters (a coordinator
    /// answers with the sum over its live workers).
    ///
    /// # Errors
    ///
    /// Transport failures, or a server-side error reply as
    /// [`ProtocolError::Format`].
    pub fn stats(&mut self) -> ProtoResult<CacheStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ProtocolError::Format(e)),
            other => unexpected(&other),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected reply kind.
    pub fn shutdown(&mut self) -> ProtoResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => unexpected(&other),
        }
    }

    /// Polls a job every `poll` until it reaches a terminal state
    /// (`Done`, `Failed`, or `Cancelled`) or `timeout` elapses. A
    /// `timeout` too large to represent as a deadline (`Duration::MAX`
    /// and friends) saturates into "wait until terminal" instead of
    /// panicking on `Instant` overflow.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown jobs, or timeout (as
    /// [`ProtocolError::Format`], naming the last observed state).
    pub fn wait(&mut self, id: JobId, timeout: Duration, poll: Duration) -> ProtoResult<JobState> {
        let deadline = deadline_after(timeout);
        loop {
            let state = self.status(id)?;
            match state {
                JobState::Queued | JobState::Running { .. } => {
                    if expired(deadline) {
                        return Err(ProtocolError::Format(format!(
                            "timed out after {:.1}s waiting for job {id} (last state: {state:?})",
                            timeout.as_secs_f64()
                        )));
                    }
                    std::thread::sleep(poll);
                }
                terminal => return Ok(terminal),
            }
        }
    }
}

fn unexpected<T>(resp: &Response) -> ProtoResult<T> {
    Err(ProtocolError::Format(format!(
        "unexpected response kind: {resp:?}"
    )))
}
