//! The `pimgfx-serve` daemon: accept loop, scheduler, and drain logic.
//!
//! One scheduler thread pops job tokens off the bounded queue and runs
//! each job's cells through `pimgfx_bench::pool` over a shared
//! [`SceneCache`]; connection handlers are cheap detached threads that
//! only parse frames and touch the job registry. Graceful drain (a
//! `Shutdown` request, or [`DrainHandle::drain`] from a signal
//! watcher) finishes every accepted job, flushes results, refuses new
//! submissions with `ShuttingDown`, and returns from [`Server::run`]
//! so the process can exit 0.

use crate::deadline::{deadline_after, expired};
use crate::job::{job_manifest_json, job_variants};
use crate::protocol::{
    self, CacheStats, JobId, JobSpec, JobState, ProtocolError, Request, Response,
};
use crate::queue::{BoundedQueue, PushError};
use pimgfx::{FragmentStreamCache, SimConfig};
use pimgfx_bench::manifest::CellSummary;
use pimgfx_bench::{pool, run_variant_replay_lanes, Harness, HarnessResult, SECTIONS};
use pimgfx_types::{ConfigError, Error, FxHashMap};
use pimgfx_workloads::{Game, SceneCache, Workload};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Frames simulated per job column.
    pub frames: usize,
    /// Bound on outstanding jobs (queued + running); submissions over
    /// it get `Busy`.
    pub queue_capacity: usize,
    /// Default per-job deadline in milliseconds applied when a spec
    /// says 0; 0 here means "no deadline".
    pub default_deadline_ms: u64,
    /// Optional LRU bound on resident scene columns (`None` =
    /// unbounded, matching the local harness default).
    pub scene_capacity: Option<usize>,
    /// Optional LRU bound on resident frontend streams. `None` mirrors
    /// `scene_capacity` (a stream is useless once its scene is gone);
    /// a tighter explicit bound lets `pimgfx-loadgen --synthetic`
    /// soaks force stream evictions without evicting scenes.
    pub stream_capacity: Option<usize>,
    /// When set, every finished job's manifest is also flushed to
    /// `<dir>/job-<id>.json`.
    pub results_dir: Option<PathBuf>,
    /// Test scaffolding: sleep this long before a job's first cell,
    /// widening backpressure/cancellation windows deterministically
    /// (the daemon maps `PIMGFX_SERVE_HOLD_MS` onto it).
    pub hold_before_job: Duration,
    /// Read/write timeout applied to every accepted client socket. A
    /// peer that connects and then stalls longer than this — mid-frame
    /// or between requests — is treated as a clean disconnect instead
    /// of pinning its handler thread forever. `Duration::ZERO`
    /// disables the timeout (not recommended outside tests).
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            frames: 2,
            queue_capacity: 4,
            default_deadline_ms: 0,
            scene_capacity: None,
            stream_capacity: None,
            results_dir: None,
            hold_before_job: Duration::ZERO,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Job execution phase, kept in the server-side registry.
#[derive(Debug)]
enum Phase {
    Queued,
    Running { done: Arc<AtomicU32>, total: u32 },
    Done { manifest: String, cells: u32 },
    Failed(String),
    Cancelled(String),
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    cancel: Arc<AtomicBool>,
    phase: Phase,
}

#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    queue: BoundedQueue<JobId>,
    // lock:rank(10, serve.server.jobs)
    jobs: Mutex<FxHashMap<JobId, JobEntry>>,
    next_id: AtomicU64,
    draining: Arc<AtomicBool>,
    scenes: SceneCache,
    /// Frontend streams shared across jobs: consecutive variants (and
    /// consecutive jobs) on one column pay the frontend pass once.
    streams: FragmentStreamCache,
}

impl Shared {
    /// Registry state is plain data; recover from a poisoned lock
    /// rather than wedging every connection.
    fn jobs(&self) -> MutexGuard<'_, FxHashMap<JobId, JobEntry>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set_phase(&self, id: JobId, phase: Phase) {
        if let Some(entry) = self.jobs().get_mut(&id) {
            entry.phase = phase;
        }
    }
}

/// Handle for requesting a graceful drain from outside the server
/// (e.g. a SIGTERM watcher thread in the daemon binary).
#[derive(Debug, Clone)]
pub struct DrainHandle(Arc<AtomicBool>);

impl DrainHandle {
    pub(crate) fn new(flag: Arc<AtomicBool>) -> Self {
        Self(flag)
    }

    /// Starts the drain: in-flight and queued jobs finish, new
    /// submissions are refused, and [`Server::run`] returns.
    pub fn drain(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the configuration is
    /// invalid (zero frames or queue capacity).
    pub fn bind(config: ServeConfig) -> HarnessResult<Self> {
        if config.frames == 0 {
            return Err(ConfigError::new("pimgfx-serve", "frames must be at least 1").into());
        }
        if config.queue_capacity == 0 {
            return Err(
                ConfigError::new("pimgfx-serve", "queue capacity must be at least 1").into(),
            );
        }
        if let Some(0) = config.scene_capacity {
            return Err(ConfigError::new(
                "pimgfx-serve",
                "scene cache capacity must be at least 1 column (omit for unbounded)",
            )
            .into());
        }
        if let Some(0) = config.stream_capacity {
            return Err(ConfigError::new(
                "pimgfx-serve",
                "stream cache capacity must be at least 1 column (omit for unbounded)",
            )
            .into());
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::io(format!("binding {}", config.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io("reading bound address", e))?;
        let scenes = match config.scene_capacity {
            Some(cap) => SceneCache::with_capacity(config.frames, cap),
            None => SceneCache::new(config.frames),
        };
        // The stream cache mirrors the scene cache's bound unless an
        // explicit stream bound is set: a column's frontend artifact
        // is useless once its scene is evicted.
        let tile_px = SimConfig::default().tile_px;
        let streams = match config.stream_capacity.or(config.scene_capacity) {
            Some(cap) => FragmentStreamCache::with_capacity(tile_px, cap),
            None => FragmentStreamCache::new(tile_px),
        };
        let queue = BoundedQueue::new(config.queue_capacity);
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(Shared {
                config,
                queue,
                jobs: Mutex::new(FxHashMap::default()),
                next_id: AtomicU64::new(0),
                draining: Arc::new(AtomicBool::new(false)),
                scenes,
                streams,
            }),
        })
    }

    /// The actually bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that triggers a graceful drain from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.shared.draining))
    }

    /// Runs the daemon until drained: accepts connections, schedules
    /// jobs, and returns `Ok(())` once a drain request has been
    /// honored (all accepted jobs finished, results flushed).
    ///
    /// # Errors
    ///
    /// Fails on fatal listener errors or a panicked scheduler thread.
    pub fn run(self) -> HarnessResult<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::io("setting listener nonblocking", e))?;
        let shared = self.shared;
        let scheduler = {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || scheduler_loop(&sh))
        };
        let fatal = loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let sh = Arc::clone(&shared);
                    // Detached on purpose: a drain must not wait on
                    // idle client connections, only on accepted jobs.
                    std::thread::spawn(move || handle_connection(&sh, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if shared.draining.load(Ordering::SeqCst) && shared.queue.is_idle() {
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.draining.store(true, Ordering::SeqCst);
                    break Some(Error::io("accepting connection", e));
                }
            }
        };
        shared.queue.close();
        if scheduler.join().is_err() {
            return Err(ConfigError::new("pimgfx-serve", "scheduler thread panicked").into());
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn scheduler_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(id) => {
                execute_job(shared, id);
                shared.queue.task_done();
            }
            None => {
                let drained = shared.draining.load(Ordering::SeqCst) && shared.queue.is_idle();
                if drained || shared.queue.is_closed() {
                    break;
                }
            }
        }
    }
}

/// Runs one job to a terminal phase. Never panics: every failure path
/// lands in `Phase::Failed`/`Phase::Cancelled` so clients always get
/// an answer.
fn execute_job(shared: &Shared, id: JobId) {
    let (spec, cancel, done) = {
        let mut jobs = shared.jobs();
        let Some(entry) = jobs.get_mut(&id) else {
            return;
        };
        if entry.cancel.load(Ordering::SeqCst) {
            entry.phase = Phase::Cancelled("cancelled before start".to_string());
            return;
        }
        let variants = job_variants(&entry.spec);
        let total = u32::try_from(variants.len()).unwrap_or(u32::MAX);
        let done = Arc::new(AtomicU32::new(0));
        entry.phase = Phase::Running {
            done: Arc::clone(&done),
            total,
        };
        (entry.spec.clone(), Arc::clone(&entry.cancel), done)
    };

    let deadline_ms = if spec.deadline_ms > 0 {
        spec.deadline_ms
    } else {
        shared.config.default_deadline_ms
    };
    // An unrepresentable deadline (absurdly large deadline_ms)
    // saturates into "no deadline" instead of panicking mid-job.
    let deadline = (deadline_ms > 0)
        .then(|| deadline_after(Duration::from_millis(deadline_ms)))
        .flatten();
    if shared.config.hold_before_job > Duration::ZERO {
        std::thread::sleep(shared.config.hold_before_job);
    }

    let variants = job_variants(&spec);
    let total = variants.len();
    let workers = match pool::worker_count(total) {
        Ok(w) => w,
        Err(e) => {
            shared.set_phase(id, Phase::Failed(format!("resolving worker count: {e}")));
            return;
        }
    };
    // The cell-level fan-out and the per-cell replay lanes share one
    // thread budget (PIMGFX_THREADS), so a wide job gets 1 lane per
    // cell and a narrow job spends the spare budget inside each replay.
    let lanes = match pool::configured_replay_lanes(workers) {
        Ok(l) => l,
        Err(e) => {
            shared.set_phase(id, Phase::Failed(format!("resolving replay lanes: {e}")));
            return;
        }
    };
    // Columns are validated at submission — games against Table II,
    // synthetic specs via `SyntheticSpec::validate` — so the scene
    // build cannot hit the cache's invalid-column panic here.
    let scene = shared.scenes.get(spec.workload, spec.resolution);
    // Pre-warm the column's frontend stream on the scheduler thread so
    // pool workers hitting a cold column don't race duplicate builds.
    if let Err(e) = shared.streams.get(&scene) {
        shared.set_phase(id, Phase::Failed(format!("frontend pass: {e}")));
        return;
    }
    let results = pool::run_ordered(&variants, workers, |&v| {
        if cancel.load(Ordering::SeqCst) || expired(deadline) {
            None
        } else {
            done.fetch_add(1, Ordering::SeqCst);
            Some(run_variant_replay_lanes(&scene, v, &shared.streams, lanes))
        }
    });
    // Operational visibility for the smoke test and operators: one
    // line per job on stderr, the daemon's diagnostic channel.
    #[allow(clippy::print_stderr)]
    {
        let stats = shared.streams.stats();
        eprintln!(
            "pimgfx-serve: job {id}: frontend_cache hits={} misses={} evictions={}",
            stats.hits, stats.misses, stats.evictions
        );
    }

    let skipped = results.iter().filter(|r| r.is_none()).count();
    if skipped > 0 {
        let ran = total - skipped;
        let reason = if cancel.load(Ordering::SeqCst) {
            format!("cancelled by client after {ran} of {total} cells")
        } else {
            format!("deadline of {deadline_ms} ms exceeded after {ran} of {total} cells")
        };
        shared.set_phase(id, Phase::Cancelled(reason));
        return;
    }

    let column = Harness::column_label(spec.workload, spec.resolution);
    let mut cells: Vec<CellSummary> = Vec::with_capacity(total);
    for (v, res) in variants.iter().zip(results) {
        match res {
            Some(Ok(report)) => {
                cells.push(CellSummary::from_report(&column, &v.label(), &report));
            }
            Some(Err(e)) => {
                shared.set_phase(id, Phase::Failed(format!("cell {}: {e}", v.label())));
                return;
            }
            None => {}
        }
    }

    if spec.trace {
        let bad = cells.iter().filter(|c| !c.audit_ok()).count();
        if bad > 0 {
            shared.set_phase(
                id,
                Phase::Failed(format!(
                    "trace audit failed for {bad} of {} cells",
                    cells.len()
                )),
            );
            return;
        }
    }

    let manifest = job_manifest_json(id, &spec, shared.config.frames, &cells);
    if let Some(dir) = &shared.config.results_dir {
        let write = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join(format!("job-{id}.json")), &manifest));
        if let Err(e) = write {
            shared.set_phase(
                id,
                Phase::Failed(format!("writing result to {}: {e}", dir.display())),
            );
            return;
        }
    }
    let cell_count = u32::try_from(cells.len()).unwrap_or(u32::MAX);
    shared.set_phase(
        id,
        Phase::Done {
            manifest,
            cells: cell_count,
        },
    );
}

/// Whether a protocol failure is a socket read/write timeout — a
/// stalled peer, not a corrupt stream. Unix reports an expired
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`; Windows as `TimedOut`.
pub(crate) fn is_stall(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Io(io)
            if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    // The regression this guards: an accepted socket with no timeouts
    // let a client that connects and stalls pin this detached thread
    // forever. A stalled peer now surfaces as a timeout, handled below
    // as a clean disconnect.
    let timeout = (shared.config.io_timeout > Duration::ZERO).then_some(shared.config.io_timeout);
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match protocol::read_request(&mut reader) {
            Ok(Some(req)) => {
                let resp = dispatch(shared, &req);
                if protocol::write_response(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(None) => break,
            // A stalled peer gets no best-effort reply: writing to it
            // could stall in turn. Drop the connection cleanly.
            Err(e) if is_stall(&e) => break,
            Err(e) => {
                // Best-effort error reply; the connection is done
                // either way (framing is unrecoverable mid-stream).
                let _ = protocol::write_response(
                    &mut writer,
                    &Response::Error(format!("protocol error: {e}")),
                );
                break;
            }
        }
    }
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    match req {
        Request::SubmitJob(spec) => submit(shared, spec),
        Request::JobStatus(id) => status(shared, *id),
        Request::FetchResult(id) => fetch(shared, *id),
        Request::CancelJob(id) => cancel(shared, *id),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::SubmitMatrix(_) => Response::Error(
            "matrix jobs are accepted by pimgfx-coord; \
             submit single-column jobs to pimgfx-serve"
                .to_string(),
        ),
        Request::Stats => Response::Stats(cache_stats(shared)),
    }
}

/// Snapshot of this worker's cumulative cache counters.
fn cache_stats(shared: &Shared) -> CacheStats {
    let streams = shared.streams.stats();
    CacheStats {
        scene_evictions: shared.scenes.evictions(),
        stream_hits: streams.hits,
        stream_misses: streams.misses,
        stream_evictions: streams.evictions,
    }
}

fn submit(shared: &Shared, spec: &JobSpec) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::ShuttingDown;
    }
    match spec.workload {
        Workload::Game(g) => {
            if !Game::benchmark_matrix().contains(&(g, spec.resolution)) {
                return Response::Error(format!(
                    "{} is not a Table II benchmark column",
                    Harness::column_label(spec.workload, spec.resolution)
                ));
            }
        }
        // Synthetic columns are open-ended by design: any valid spec at
        // any resolution is renderable.
        Workload::Synthetic(s) => {
            if let Err(e) = s.validate() {
                return Response::Error(format!("invalid synthetic workload: {e}"));
            }
        }
    }
    for s in &spec.sections {
        if !SECTIONS.contains(&s.as_str()) {
            return Response::Error(format!(
                "unknown section `{s}` (expected one of: {})",
                SECTIONS.join(", ")
            ));
        }
    }
    if job_variants(spec).is_empty() {
        return Response::Error(
            "job selects no simulation cells; pass variants or figure sections".to_string(),
        );
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    shared.jobs().insert(
        id,
        JobEntry {
            spec: spec.clone(),
            cancel: Arc::new(AtomicBool::new(false)),
            phase: Phase::Queued,
        },
    );
    match shared.queue.try_push(id) {
        Ok(()) => Response::Submitted(id),
        Err(PushError::Full { depth, capacity }) => {
            shared.jobs().remove(&id);
            Response::Busy {
                depth: u32::try_from(depth).unwrap_or(u32::MAX),
                capacity: u32::try_from(capacity).unwrap_or(u32::MAX),
            }
        }
        Err(PushError::Closed) => {
            shared.jobs().remove(&id);
            Response::ShuttingDown
        }
    }
}

fn state_of(entry: &JobEntry) -> JobState {
    match &entry.phase {
        Phase::Queued => JobState::Queued,
        Phase::Running { done, total } => JobState::Running {
            done: done.load(Ordering::SeqCst),
            total: *total,
        },
        Phase::Done { cells, .. } => JobState::Done { cells: *cells },
        Phase::Failed(m) => JobState::Failed(m.clone()),
        Phase::Cancelled(m) => JobState::Cancelled(m.clone()),
    }
}

fn status(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => Response::Status(state_of(entry)),
        None => Response::Error(format!("unknown job {id}")),
    }
}

fn fetch(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => match &entry.phase {
            Phase::Done { manifest, .. } => Response::JobResult {
                manifest_json: manifest.clone(),
            },
            Phase::Failed(m) => Response::Error(format!("job {id} failed: {m}")),
            Phase::Cancelled(m) => Response::Error(format!("job {id} was cancelled: {m}")),
            Phase::Queued | Phase::Running { .. } => {
                Response::Error(format!("job {id} is not finished"))
            }
        },
        None => Response::Error(format!("unknown job {id}")),
    }
}

fn cancel(shared: &Shared, id: JobId) -> Response {
    match shared.jobs().get(&id) {
        Some(entry) => {
            entry.cancel.store(true, Ordering::SeqCst);
            Response::Status(state_of(entry))
        }
        None => Response::Error(format!("unknown job {id}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_validates_configuration() {
        let bad_frames = ServeConfig {
            frames: 0,
            ..ServeConfig::default()
        };
        assert!(Server::bind(bad_frames).is_err());
        let bad_queue = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(Server::bind(bad_queue).is_err());
        let bad_cache = ServeConfig {
            scene_capacity: Some(0),
            ..ServeConfig::default()
        };
        assert!(Server::bind(bad_cache).is_err());
    }

    #[test]
    fn ephemeral_bind_reports_a_real_port() {
        let server = Server::bind(ServeConfig::default()).expect("bind 127.0.0.1:0");
        assert_ne!(server.local_addr().port(), 0);
    }
}
