//! Overflow-safe wall-clock deadlines for the serving plane.
//!
//! `Instant + Duration` panics when the sum is not representable, and
//! callers across the crate (queue pops, client waits, job deadlines)
//! all take caller-supplied `Duration`s — including `Duration::MAX`,
//! the idiomatic "wait forever". Every deadline in `crates/serve`
//! therefore goes through [`deadline_after`], which saturates an
//! unrepresentable sum into `None` ("no deadline") instead of
//! panicking, and [`expired`], which treats `None` as never expiring.

use std::time::{Duration, Instant};

/// The wall-clock deadline `timeout` from now, or `None` when the sum
/// is not representable (a practically infinite timeout such as
/// `Duration::MAX`): `None` means "no deadline" to every caller in
/// this crate.
#[must_use]
pub fn deadline_after(timeout: Duration) -> Option<Instant> {
    // det:boundary — service-plane deadline arithmetic; the value
    // bounds waiting only and never reaches simulated results.
    Instant::now().checked_add(timeout)
}

/// Whether `deadline` has passed; a `None` deadline never expires.
#[must_use]
pub fn expired(deadline: Option<Instant>) -> bool {
    // det:boundary — wall-clock comparison against a service deadline;
    // the outcome gates waiting, never simulated results.
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Time left until `deadline` (zero once expired); a `None` deadline
/// has no remaining time to report.
#[must_use]
pub fn remaining(deadline: Option<Instant>) -> Option<Duration> {
    // det:boundary — service-plane countdown for Condvar waits; never
    // reaches simulated results.
    deadline.map(|d| d.saturating_duration_since(Instant::now()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_max_saturates_to_no_deadline() {
        // The regression: `Instant::now() + Duration::MAX` panics.
        assert_eq!(deadline_after(Duration::MAX), None);
        assert!(!expired(None));
        assert_eq!(remaining(None), None);
    }

    #[test]
    fn ordinary_timeouts_still_expire() {
        let d = deadline_after(Duration::ZERO);
        assert!(d.is_some());
        assert!(expired(d));
        let far = deadline_after(Duration::from_secs(3600));
        assert!(!expired(far));
        assert!(remaining(far).is_some_and(|r| r > Duration::from_secs(3500)));
    }
}
