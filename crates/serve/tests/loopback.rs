//! Loopback integration tests: a real daemon on an ephemeral port, a
//! real client, real sockets.
//!
//! The headline assertion is byte-equivalence: a manifest fetched over
//! the wire is identical to the one computed from a local
//! harness run of the same job. The rest exercises the robustness
//! story end-to-end — `Busy` backpressure at capacity, deadline
//! cancellation between cells, client cancellation, and graceful
//! drain that finishes in-flight work, flushes results, and lets
//! `Server::run` return cleanly.

use pimgfx::Design;
use pimgfx_bench::manifest::CellSummary;
use pimgfx_bench::{Harness, Variant};
use pimgfx_serve::job::job_manifest_json;
use pimgfx_serve::{Client, JobSpec, JobState, Response, ServeConfig, Server};
use pimgfx_workloads::{Game, Resolution, SyntheticSpec, Workload};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

type ServerHandle = JoinHandle<pimgfx_bench::HarnessResult<()>>;

fn start(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn baseline_spec() -> JobSpec {
    JobSpec {
        workload: Game::Doom3.into(),
        resolution: Resolution::R320x240,
        variants: vec![Variant::Design(Design::Baseline)],
        sections: Vec::new(),
        trace: true,
        deadline_ms: 0,
    }
}

fn submit_ok(client: &mut Client, spec: &JobSpec) -> u64 {
    match client.submit(spec).expect("submit") {
        Response::Submitted(id) => id,
        other => panic!("expected Submitted, got {other:?}"),
    }
}

const WAIT: Duration = Duration::from_secs(300);
const POLL: Duration = Duration::from_millis(50);

fn test_synthetic() -> SyntheticSpec {
    SyntheticSpec {
        seed: 0xC0FFEE,
        triangles: 400,
        textures: 2,
        texture_size: 32,
        kind_mask: 0x3,
        grazing_milli: 500,
        overdraw: 1,
        path_frames: 4,
    }
}

#[test]
fn synthetic_job_is_served_and_matches_local_harness() {
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = JobSpec {
        workload: Workload::Synthetic(test_synthetic()),
        ..baseline_spec()
    };
    let id = submit_ok(&mut client, &spec);
    let state = client.wait(id, WAIT, POLL).expect("wait");
    assert_eq!(state, JobState::Done { cells: 1 }, "synthetic job finishes");
    let served = client.fetch_manifest(id).expect("fetch");

    let mut h = Harness::new(1);
    let report = h
        .run(
            spec.workload,
            spec.resolution,
            Variant::Design(Design::Baseline),
        )
        .expect("local run")
        .clone();
    let cell = CellSummary::from_report(
        &Harness::column_label(spec.workload, spec.resolution),
        "baseline",
        &report,
    );
    let local = job_manifest_json(id, &spec, 1, &[cell]);
    assert_eq!(served, local, "served synthetic manifest must match");

    // The cumulative cache counters are queryable over the wire; an
    // unbounded cache never evicts.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.scene_evictions, 0);
    assert_eq!(stats.stream_evictions, 0);

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn served_result_matches_local_harness_byte_for_byte() {
    let results_dir =
        std::env::temp_dir().join(format!("pimgfx_serve_equiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results_dir);
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        results_dir: Some(results_dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = baseline_spec();
    let id = submit_ok(&mut client, &spec);
    let state = client.wait(id, WAIT, POLL).expect("wait");
    assert_eq!(state, JobState::Done { cells: 1 }, "job must finish");
    let served = client.fetch_manifest(id).expect("fetch");

    // The same job, computed directly through the local harness.
    let mut h = Harness::new(1);
    let report = h
        .run(
            spec.workload,
            spec.resolution,
            Variant::Design(Design::Baseline),
        )
        .expect("local run")
        .clone();
    let cell = CellSummary::from_report(
        &Harness::column_label(spec.workload, spec.resolution),
        "baseline",
        &report,
    );
    let local = job_manifest_json(id, &spec, 1, &[cell]);
    assert_eq!(
        served, local,
        "served manifest must be byte-identical to the harness-direct one"
    );

    // The flushed result file carries the same bytes.
    let on_disk = std::fs::read_to_string(results_dir.join(format!("job-{id}.json")))
        .expect("result file flushed");
    assert_eq!(on_disk, served);

    client.shutdown().expect("shutdown");
    handle
        .join()
        .expect("server thread")
        .expect("clean drain after shutdown");
    let _ = std::fs::remove_dir_all(&results_dir);
}

#[test]
fn over_capacity_submission_gets_busy_backpressure() {
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        queue_capacity: 1,
        hold_before_job: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let first = submit_ok(&mut client, &baseline_spec());
    // The queue bounds *outstanding* work, so while the first job is
    // queued or running the second submission must bounce.
    match client.submit(&baseline_spec()).expect("submit #2") {
        Response::Busy { depth, capacity } => {
            assert_eq!((depth, capacity), (1, 1));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(
        client.wait(first, WAIT, POLL).expect("wait"),
        JobState::Done { cells: 1 }
    );
    // Capacity freed: a new submission is accepted again.
    let second = submit_ok(&mut client, &baseline_spec());
    assert_eq!(
        client.wait(second, WAIT, POLL).expect("wait #2"),
        JobState::Done { cells: 1 }
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn deadline_cancels_between_cells() {
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        hold_before_job: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let spec = JobSpec {
        deadline_ms: 1, // expires during the hold, before any cell
        variants: vec![
            Variant::Design(Design::Baseline),
            Variant::Design(Design::BPim),
        ],
        ..baseline_spec()
    };
    let id = submit_ok(&mut client, &spec);
    match client.wait(id, WAIT, POLL).expect("wait") {
        JobState::Cancelled(reason) => {
            assert!(reason.contains("deadline"), "{reason}");
            assert!(reason.contains("0 of 2"), "{reason}");
        }
        other => panic!("expected deadline cancellation, got {other:?}"),
    }
    // A cancelled job has no fetchable result.
    assert!(client.fetch_manifest(id).is_err());
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn client_cancellation_lands_between_cells() {
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        hold_before_job: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let id = submit_ok(&mut client, &baseline_spec());
    client.cancel(id).expect("cancel accepted");
    match client.wait(id, WAIT, POLL).expect("wait") {
        JobState::Cancelled(reason) => {
            assert!(reason.contains("cancelled"), "{reason}");
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn shutdown_drains_inflight_work_then_run_returns_ok() {
    let results_dir =
        std::env::temp_dir().join(format!("pimgfx_serve_drain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results_dir);
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        results_dir: Some(results_dir.clone()),
        hold_before_job: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // Job in flight, then an immediate drain request.
    let id = submit_ok(&mut client, &baseline_spec());
    client.shutdown().expect("shutdown");
    // While draining, new work is refused.
    match client
        .submit(&baseline_spec())
        .expect("submit during drain")
    {
        Response::ShuttingDown => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // run() only returns once the accepted job finished...
    handle.join().expect("server thread").expect("clean drain");
    // ...and its manifest was flushed on the way out.
    let body = std::fs::read_to_string(results_dir.join(format!("job-{id}.json")))
        .expect("in-flight job flushed during drain");
    assert!(body.contains("\"schema_version\": 4"), "{body}");
    let _ = std::fs::remove_dir_all(&results_dir);
}

#[test]
fn invalid_submissions_are_rejected_with_reasons() {
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // Wolfenstein only runs 640x480 in Table II.
    let bad_column = JobSpec {
        workload: Game::Wolfenstein.into(),
        resolution: Resolution::R320x240,
        ..baseline_spec()
    };
    match client.submit(&bad_column).expect("reply") {
        Response::Error(e) => assert!(e.contains("Table II"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Invalid synthetic specs bounce with the validation message. The
    // server validates specs at decode time, so after the best-effort
    // error reply it treats the frame as corrupt and drops the
    // connection — reconnect before the next check.
    let bad_synthetic = JobSpec {
        workload: Workload::Synthetic(SyntheticSpec {
            triangles: 0,
            ..test_synthetic()
        }),
        ..baseline_spec()
    };
    match client.submit(&bad_synthetic).expect("reply") {
        Response::Error(e) => assert!(e.contains("synthetic"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }
    client = Client::connect(addr).expect("reconnect");

    let bad_section = JobSpec {
        variants: Vec::new(),
        sections: vec!["fig99".to_string()],
        ..baseline_spec()
    };
    match client.submit(&bad_section).expect("reply") {
        Response::Error(e) => assert!(e.contains("unknown section"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Static sections select zero simulation cells.
    let no_cells = JobSpec {
        variants: Vec::new(),
        sections: vec!["table1".to_string()],
        ..baseline_spec()
    };
    match client.submit(&no_cells).expect("reply") {
        Response::Error(e) => assert!(e.contains("no simulation cells"), "{e}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // Operations on unknown jobs answer with errors, not hangs.
    assert!(client.status(999).is_err());
    assert!(client.fetch_manifest(999).is_err());
    assert!(client.cancel(999).is_err());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn results_dir_is_optional() {
    // Sanity check the PathBuf plumbing: no results dir, still Done.
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        results_dir: None::<PathBuf>.clone(),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let id = submit_ok(&mut client, &baseline_spec());
    assert_eq!(
        client.wait(id, WAIT, POLL).expect("wait"),
        JobState::Done { cells: 1 }
    );
    assert!(client
        .fetch_manifest(id)
        .expect("fetch")
        .contains("\"tool\": \"pimgfx-serve\""));
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn stalled_connection_times_out_as_clean_disconnect() {
    // Regression: accepted sockets used to carry no read/write
    // timeouts, so a client that connected and stalled mid-frame
    // pinned its handler thread forever. With an io_timeout the stall
    // must surface as a clean disconnect — and never disturb healthy
    // clients on other connections.
    use std::io::{Read, Write};
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        io_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });

    // A raw socket that writes half the frame magic and stalls.
    let mut stall = std::net::TcpStream::connect(addr).expect("connect raw");
    stall.write_all(b"PG").expect("partial magic");
    stall.flush().expect("flush");
    stall
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = [0u8; 16];
    match stall.read(&mut buf) {
        // Clean EOF or a reset: the server dropped us. A stalled peer
        // gets no best-effort error reply (writing could stall too).
        Ok(0) => {}
        Ok(n) => panic!("server answered a stalled half-frame with {n} bytes"),
        // Our own 10s read timeout firing would mean the server never
        // closed the stalled connection — the original bug.
        Err(e) => assert!(
            !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "server never closed the stalled connection: {e}"
        ),
    }

    // A healthy client on a fresh connection is unaffected.
    let mut client = Client::connect(addr).expect("connect healthy");
    let id = submit_ok(&mut client, &baseline_spec());
    assert!(matches!(
        client.wait(id, WAIT, POLL).expect("wait"),
        JobState::Done { .. }
    ));
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}

#[test]
fn wait_with_duration_max_saturates_instead_of_panicking() {
    // Regression: `Instant::now() + Duration::MAX` inside
    // `Client::wait` panicked on entry. The overflow now saturates
    // into "no deadline" and the wait completes normally.
    let (addr, handle) = start(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let id = submit_ok(&mut client, &baseline_spec());
    assert_eq!(
        client.wait(id, Duration::MAX, POLL).expect("wait"),
        JobState::Done { cells: 1 }
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("clean drain");
}
