//! Wire-protocol coverage: every frame round-trips byte-exactly, and
//! corrupt streams (bad magic, future version, truncation, oversized
//! lengths, trailing bytes) are rejected as `Format` errors — never a
//! panic or an unbounded allocation.

use pimgfx::Design;
use pimgfx_bench::Variant;
use pimgfx_serve::protocol::{
    read_request, read_response, write_request, write_response, CacheStats, JobSpec, JobState,
    MatrixSpec, ProtocolError, Request, Response, MAGIC, MAX_PAYLOAD, VERSION,
};
use pimgfx_workloads::{Game, Resolution, SyntheticSpec, Workload};

fn synthetic() -> SyntheticSpec {
    SyntheticSpec {
        seed: 0xC0FFEE,
        triangles: 400,
        textures: 2,
        texture_size: 32,
        kind_mask: 0x3,
        grazing_milli: 500,
        overdraw: 1,
        path_frames: 4,
    }
}

fn spec() -> JobSpec {
    JobSpec {
        workload: Game::Fear.into(),
        resolution: Resolution::R640x480,
        variants: vec![
            Variant::Design(Design::Baseline),
            Variant::Design(Design::BPim),
            Variant::Design(Design::STfim),
            Variant::Design(Design::ATfim),
            Variant::AnisoOff,
            Variant::AtfimThreshold(0.05),
            Variant::AtfimNoRecalc,
            Variant::AtfimNoConsolidation,
            Variant::AtfimNoCompression,
        ],
        sections: vec!["fig11".to_string(), "fig14".to_string()],
        trace: true,
        deadline_ms: 1234,
    }
}

fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    write_request(&mut buf, req).expect("encode request");
    buf
}

fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    write_response(&mut buf, resp).expect("encode response");
    buf
}

fn matrix_spec() -> MatrixSpec {
    MatrixSpec {
        columns: vec![
            (Game::Doom3.into(), Resolution::R320x240),
            (Game::Fear.into(), Resolution::R640x480),
            (Game::Wolfenstein.into(), Resolution::R1280x1024),
            (Workload::Synthetic(synthetic()), Resolution::R1920x1080),
        ],
        variants: vec![Variant::Design(Design::Baseline), Variant::AnisoOff],
        sections: vec!["fig5".to_string()],
        trace: true,
        deadline_ms: 9876,
    }
}

fn all_requests() -> Vec<Request> {
    vec![
        Request::SubmitJob(spec()),
        Request::SubmitMatrix(matrix_spec()),
        Request::SubmitMatrix(MatrixSpec {
            columns: Vec::new(),
            variants: Vec::new(),
            sections: Vec::new(),
            trace: false,
            deadline_ms: 0,
        }),
        Request::JobStatus(42),
        Request::FetchResult(u64::MAX),
        Request::CancelJob(7),
        Request::Stats,
        Request::Shutdown,
        Request::SubmitJob(JobSpec {
            workload: Workload::Synthetic(synthetic()),
            resolution: Resolution::R3840x2160,
            variants: vec![Variant::Design(Design::ATfim)],
            sections: Vec::new(),
            trace: false,
            deadline_ms: 0,
        }),
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Submitted(9),
        Response::Busy {
            depth: 4,
            capacity: 4,
        },
        Response::Status(JobState::Queued),
        Response::Status(JobState::Running { done: 3, total: 9 }),
        Response::Status(JobState::Done { cells: 9 }),
        Response::Status(JobState::Failed("cell x: boom".to_string())),
        Response::Status(JobState::Cancelled("deadline".to_string())),
        Response::JobResult {
            manifest_json: "{\n  \"schema_version\": 2\n}\n".to_string(),
        },
        Response::Error("unknown job 5".to_string()),
        Response::Stats(CacheStats {
            scene_evictions: 3,
            stream_hits: 101,
            stream_misses: 13,
            stream_evictions: 7,
        }),
        Response::ShuttingDown,
    ]
}

#[test]
fn every_request_round_trips() {
    for req in all_requests() {
        let buf = encode_request(&req);
        let mut cur: &[u8] = &buf;
        let back = read_request(&mut cur)
            .expect("decode")
            .expect("one frame present");
        assert_eq!(back, req);
        assert!(cur.is_empty(), "decoder must consume the whole frame");
    }
}

#[test]
fn every_response_round_trips() {
    for resp in all_responses() {
        let buf = encode_response(&resp);
        let mut cur: &[u8] = &buf;
        let back = read_response(&mut cur).expect("decode");
        assert_eq!(back, resp);
        assert!(cur.is_empty(), "decoder must consume the whole frame");
    }
}

#[test]
fn pipelined_frames_decode_in_order() {
    let mut buf = Vec::new();
    for req in all_requests() {
        buf.extend_from_slice(&encode_request(&req));
    }
    let mut cur: &[u8] = &buf;
    for expected in all_requests() {
        let got = read_request(&mut cur).expect("decode").expect("frame");
        assert_eq!(got, expected);
    }
    assert!(matches!(read_request(&mut cur), Ok(None)), "clean EOF");
}

#[test]
fn bad_magic_is_rejected() {
    let mut buf = encode_request(&Request::Shutdown);
    buf[0] ^= 0xff;
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(matches!(err, ProtocolError::Format(_)), "{err}");
    assert!(format!("{err}").contains("magic"), "{err}");
}

#[test]
fn future_version_is_rejected() {
    let mut buf = encode_request(&Request::Shutdown);
    let future = (VERSION + 1).to_le_bytes();
    buf[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&future);
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("version"), "{err}");
}

#[test]
fn truncation_at_every_boundary_is_a_format_error() {
    let full = encode_request(&Request::SubmitJob(spec()));
    for cut in [1, 3, 5, 8, 12, 16, full.len() / 2, full.len() - 1] {
        let mut cur: &[u8] = &full[..cut];
        let err = read_request(&mut cur).expect_err("truncated stream must fail");
        assert!(
            matches!(err, ProtocolError::Format(_)),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn oversized_declared_payload_is_rejected_without_allocation() {
    // Hand-craft a header declaring a payload bigger than MAX_PAYLOAD.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&5u32.to_le_bytes()); // Shutdown kind
    let declared = u32::try_from(MAX_PAYLOAD + 1).expect("fits u32");
    buf.extend_from_slice(&declared.to_le_bytes());
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("MAX_PAYLOAD"), "{err}");
}

#[test]
fn lying_length_with_short_payload_is_a_format_error() {
    // Declared length 100, only 3 payload bytes on the wire.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&2u32.to_le_bytes()); // JobStatus kind
    buf.extend_from_slice(&100u32.to_le_bytes());
    buf.extend_from_slice(&[1, 2, 3]);
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("truncated"), "{err}");
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    // A Shutdown frame whose payload should be empty but carries junk.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(&4u32.to_le_bytes());
    buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("trailing"), "{err}");
}

#[test]
fn unknown_kinds_are_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&99u32.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    let mut cur: &[u8] = &buf;
    assert!(read_request(&mut cur).is_err());

    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&1u32.to_le_bytes()); // SubmitJob kind on the response side
    buf.extend_from_slice(&0u32.to_le_bytes());
    let mut cur: &[u8] = &buf;
    assert!(read_response(&mut cur).is_err());
}

#[test]
fn truncated_matrix_frames_are_format_errors() {
    let full = encode_request(&Request::SubmitMatrix(matrix_spec()));
    for cut in [17, 21, 25, full.len() / 2, full.len() - 1] {
        let mut cur: &[u8] = &full[..cut];
        let err = read_request(&mut cur).expect_err("truncated matrix must fail");
        assert!(
            matches!(err, ProtocolError::Format(_)),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn corrupt_matrix_game_tag_is_rejected() {
    let req = Request::SubmitMatrix(MatrixSpec {
        columns: vec![(Game::Doom3.into(), Resolution::R320x240)],
        variants: Vec::new(),
        sections: Vec::new(),
        trace: false,
        deadline_ms: 0,
    });
    let mut buf = encode_request(&req);
    // Payload layout: ncol(u32) then the first column's workload tag
    // (a game column is a single u32; the synthetic tag is 5).
    let tag_at = 17 + 4;
    buf[tag_at..tag_at + 4].copy_from_slice(&200u32.to_le_bytes());
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(matches!(err, ProtocolError::Format(_)), "{err}");
}

#[test]
fn corrupt_variant_tag_is_rejected() {
    let req = Request::SubmitJob(JobSpec {
        variants: vec![Variant::AnisoOff],
        sections: Vec::new(),
        ..spec()
    });
    let mut buf = encode_request(&req);
    // The variant tag (value 4 = AnisoOff) is the u32 right after
    // magic+version+kind+len+workload+res+count (a game workload is a
    // single u32 tag); corrupt it to 200.
    let tag_at = 17 + 4 + 4 + 4;
    buf[tag_at..tag_at + 4].copy_from_slice(&200u32.to_le_bytes());
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("variant tag"), "{err}");
}

#[test]
fn invalid_synthetic_spec_on_the_wire_is_rejected() {
    // Encode a valid synthetic JobSpec, then zero the triangle count
    // in place; the decoder validates specs and must refuse it.
    let req = Request::SubmitJob(JobSpec {
        workload: Workload::Synthetic(synthetic()),
        resolution: Resolution::R320x240,
        variants: Vec::new(),
        sections: Vec::new(),
        trace: false,
        deadline_ms: 0,
    });
    let mut buf = encode_request(&req);
    // Payload layout: workload tag (5), seed lo, seed hi, triangles.
    let tri_at = 17 + 4 + 4 + 4;
    assert_eq!(
        &buf[tri_at..tri_at + 4],
        &400u32.to_le_bytes(),
        "triangle count not where expected"
    );
    buf[tri_at..tri_at + 4].copy_from_slice(&0u32.to_le_bytes());
    let mut cur: &[u8] = &buf;
    let err = read_request(&mut cur).expect_err("must reject");
    assert!(format!("{err}").contains("synthetic"), "{err}");
}
