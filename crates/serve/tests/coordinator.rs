//! Coordinator integration tests: a real `pimgfx-coord` in front of
//! real `pimgfx-serve` workers, all over loopback sockets.
//!
//! The headline assertion is distribution-transparency: a matrix
//! manifest merged from two workers is byte-identical both to the
//! locally computed manifest (same cells through the in-process
//! harness) and to a single-worker coordinator run of the same matrix.
//! The rest exercises the failure policy end-to-end: a killed worker's
//! shard re-hashes to the survivor, a saturated worker's `Busy` is
//! retried with backoff until the slot frees, and the coordinator's
//! own admission control answers `Busy` with the same semantics a
//! worker uses.

use pimgfx::Design;
use pimgfx_bench::manifest::CellSummary;
use pimgfx_bench::{Harness, Variant};
use pimgfx_serve::protocol::CacheStats;
use pimgfx_serve::shard::{choose_worker, matrix_manifest_json};
use pimgfx_serve::{
    Client, CoordConfig, Coordinator, JobState, MatrixSpec, Response, ServeConfig, Server,
};
use pimgfx_workloads::{Game, Resolution, SyntheticSpec, Workload};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;

type DaemonHandle = JoinHandle<pimgfx_bench::HarnessResult<()>>;

const WAIT: Duration = Duration::from_secs(300);
const POLL: Duration = Duration::from_millis(50);

fn start_worker(config: ServeConfig) -> (SocketAddr, DaemonHandle) {
    let server = Server::bind(config).expect("bind worker");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn start_coord(config: CoordConfig) -> (SocketAddr, DaemonHandle) {
    let coord = Coordinator::bind(config).expect("bind coordinator");
    let addr = coord.local_addr();
    let handle = std::thread::spawn(move || coord.run());
    (addr, handle)
}

fn coord_config(workers: &[SocketAddr]) -> CoordConfig {
    CoordConfig {
        workers: workers.iter().map(SocketAddr::to_string).collect(),
        frames: 1,
        max_attempts: 4,
        retry_backoff: Duration::from_millis(50),
        ..CoordConfig::default()
    }
}

fn matrix(columns: &[(Workload, Resolution)]) -> MatrixSpec {
    MatrixSpec {
        columns: columns.to_vec(),
        variants: vec![Variant::Design(Design::Baseline)],
        sections: Vec::new(),
        trace: false,
        deadline_ms: 0,
    }
}

fn submit_matrix_ok(client: &mut Client, spec: &MatrixSpec) -> u64 {
    match client.submit_matrix(spec).expect("submit matrix") {
        Response::Submitted(id) => id,
        other => panic!("expected Submitted, got {other:?}"),
    }
}

/// The matrix manifest the coordinator *should* produce, computed
/// entirely in-process: every cell through the local harness, then the
/// same merged-manifest writer.
fn expected_manifest(job: u64, spec: &MatrixSpec) -> String {
    let mut h = Harness::new(1);
    let mut cells = Vec::new();
    for &(workload, resolution) in &spec.columns {
        for v in &spec.variants {
            let report = h.run(workload, resolution, *v).expect("local run").clone();
            cells.push(
                CellSummary::from_report(
                    &Harness::column_label(workload, resolution),
                    &v.label(),
                    &report,
                )
                .to_json_object(),
            );
        }
    }
    // Test workers run unbounded caches, so the fleet counters merged
    // into the manifest are all zero.
    matrix_manifest_json(job, spec, 1, &cells, &CacheStats::default()).expect("merge local cells")
}

fn drain(addr: SocketAddr, handle: DaemonHandle) {
    let mut c = Client::connect(addr).expect("connect for drain");
    c.shutdown().expect("shutdown");
    handle.join().expect("daemon thread").expect("clean drain");
}

#[test]
fn merged_manifest_is_byte_identical_to_local_and_single_worker_runs() {
    let (a, a_handle) = start_worker(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let (b, b_handle) = start_worker(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let spec = matrix(&[
        (Game::Doom3.into(), Resolution::R320x240),
        (Game::Fear.into(), Resolution::R320x240),
        (
            Workload::Synthetic(SyntheticSpec {
                seed: 0xC0FFEE,
                triangles: 400,
                textures: 2,
                texture_size: 32,
                kind_mask: 0x3,
                grazing_milli: 500,
                overdraw: 1,
                path_frames: 4,
            }),
            Resolution::R320x240,
        ),
    ]);

    // Two-worker coordinator: shards split across the fleet.
    let (coord2, coord2_handle) = start_coord(coord_config(&[a, b]));
    let mut client = Client::connect(coord2).expect("connect coordinator");
    let id = submit_matrix_ok(&mut client, &spec);
    assert_eq!(
        client.wait(id, WAIT, POLL).expect("wait"),
        JobState::Done { cells: 3 }
    );
    let merged = client.fetch_manifest(id).expect("fetch");
    assert_eq!(
        merged,
        expected_manifest(id, &spec),
        "two-worker merge must be byte-identical to the local harness manifest"
    );

    // A coordinator in front of a worker also accepts plain
    // single-column jobs (drop-in superset of pimgfx-serve).
    let single = pimgfx_serve::JobSpec {
        workload: Game::Doom3.into(),
        resolution: Resolution::R320x240,
        variants: vec![Variant::Design(Design::Baseline)],
        sections: Vec::new(),
        trace: false,
        deadline_ms: 0,
    };
    let sid = match client.submit(&single).expect("submit single") {
        Response::Submitted(sid) => sid,
        other => panic!("expected Submitted, got {other:?}"),
    };
    assert_eq!(
        client.wait(sid, WAIT, POLL).expect("wait single"),
        JobState::Done { cells: 1 }
    );
    let one_col = matrix(&[(Game::Doom3.into(), Resolution::R320x240)]);
    assert_eq!(
        client.fetch_manifest(sid).expect("fetch single"),
        expected_manifest(sid, &one_col)
    );
    drain(coord2, coord2_handle);

    // Single-worker coordinator over the same matrix: byte-identical
    // to the two-worker merge (distribution must be invisible).
    let (coord1, coord1_handle) = start_coord(coord_config(&[a]));
    let mut client = Client::connect(coord1).expect("connect coordinator");
    let id1 = submit_matrix_ok(&mut client, &spec);
    assert_eq!(
        client.wait(id1, WAIT, POLL).expect("wait"),
        JobState::Done { cells: 3 }
    );
    let single_node = client.fetch_manifest(id1).expect("fetch");
    assert_eq!(
        single_node,
        expected_manifest(id1, &spec),
        "single-worker manifest must also match the local harness"
    );
    // Same first-job id on both coordinators, so whole-bytes compare.
    assert_eq!(id, id1, "both coordinators assign job 1 first");
    assert_eq!(
        merged, single_node,
        "fleet size must not leak into the manifest bytes"
    );
    drain(coord1, coord1_handle);

    drain(a, a_handle);
    drain(b, b_handle);
}

#[test]
fn killed_workers_shard_is_retried_on_the_survivor() {
    let (a, a_handle) = start_worker(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let (b, b_handle) = start_worker(ServeConfig {
        frames: 1,
        ..ServeConfig::default()
    });
    let workers = vec![a.to_string(), b.to_string()];
    let alive = vec![true, true];
    // Pick a column the doomed worker owns, so its shard must re-hash.
    let victim_column = Game::benchmark_matrix()
        .into_iter()
        .find(|&(g, r)| choose_worker(&Harness::column_label(g, r), &workers, &alive) == Some(1))
        .map(|(g, r)| (Workload::Game(g), r))
        .expect("rendezvous spreads 10 columns over 2 workers");

    // Kill worker B before the coordinator ever talks to it: its
    // listener closes, so dispatch sees a refused connection.
    drain(b, b_handle);

    let (coord, coord_handle) = start_coord(coord_config(&[a, b]));
    let mut client = Client::connect(coord).expect("connect coordinator");
    let spec = matrix(&[victim_column]);
    let id = submit_matrix_ok(&mut client, &spec);
    assert_eq!(
        client.wait(id, WAIT, POLL).expect("wait"),
        JobState::Done { cells: 1 },
        "the dead owner's shard must re-hash to the survivor"
    );
    assert_eq!(
        client.fetch_manifest(id).expect("fetch"),
        expected_manifest(id, &spec),
        "a re-hashed shard's cells must still be byte-identical"
    );

    drain(coord, coord_handle);
    drain(a, a_handle);
}

#[test]
fn busy_workers_are_retried_and_coordinator_admission_sheds_load() {
    // One worker with a single slot, artificially held: the first
    // coordinator attempt is guaranteed to see `Busy` and must retry
    // its owner (not re-route) until the slot frees.
    let (a, a_handle) = start_worker(ServeConfig {
        frames: 1,
        queue_capacity: 1,
        hold_before_job: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let (coord, coord_handle) = start_coord(CoordConfig {
        queue_capacity: 1,
        max_attempts: 30,
        retry_backoff: Duration::from_millis(50),
        ..coord_config(&[a])
    });

    // Occupy the worker's only slot directly.
    let mut direct = Client::connect(a).expect("connect worker");
    let held = match direct
        .submit(&pimgfx_serve::JobSpec {
            workload: Game::Doom3.into(),
            resolution: Resolution::R320x240,
            variants: vec![Variant::Design(Design::Baseline)],
            sections: Vec::new(),
            trace: false,
            deadline_ms: 0,
        })
        .expect("direct submit")
    {
        Response::Submitted(id) => id,
        other => panic!("expected Submitted, got {other:?}"),
    };

    let mut client = Client::connect(coord).expect("connect coordinator");
    let spec = matrix(&[(Game::Doom3.into(), Resolution::R320x240)]);
    let id = submit_matrix_ok(&mut client, &spec);

    // The coordinator's own bound is also 1, so while that matrix is
    // outstanding a second submission sheds with the same
    // `Busy{depth, capacity}` semantics a worker uses.
    match client.submit_matrix(&spec).expect("submit #2") {
        Response::Busy { depth, capacity } => assert_eq!((depth, capacity), (1, 1)),
        other => panic!("expected Busy backpressure, got {other:?}"),
    }

    // Both the held direct job and the retried shard must finish.
    assert_eq!(
        client.wait(id, WAIT, POLL).expect("wait matrix"),
        JobState::Done { cells: 1 },
        "the shard must survive worker-side Busy via bounded retry"
    );
    assert!(matches!(
        direct.wait(held, WAIT, POLL).expect("wait direct"),
        JobState::Done { .. }
    ));
    assert_eq!(
        client.fetch_manifest(id).expect("fetch"),
        expected_manifest(id, &spec)
    );

    drain(coord, coord_handle);
    drain(a, a_handle);
}
