//! Property-based tests for the primitive-type invariants.

// Compiled only under `--features proptest-tests` (non-default): the
// workspace carries no external dependencies so that tier-1 CI runs
// fully offline. To run this suite, vendor `proptest` locally, add it
// to this crate's [dev-dependencies], and enable the feature (see
// README "Contributing").
#![cfg(feature = "proptest-tests")]

use pimgfx_types::{ByteCount, Mat4, PackedRgba, Radians, Rect, Rgba, Vec2, Vec3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Angular difference is symmetric, bounded by π, and zero for
    /// identical angles.
    #[test]
    fn radians_abs_diff_invariants(a in -20.0f32..20.0, b in -20.0f32..20.0) {
        let ra = Radians::new(a);
        let rb = Radians::new(b);
        let d1 = ra.abs_diff(rb).as_f32();
        let d2 = rb.abs_diff(ra).as_f32();
        prop_assert!((d1 - d2).abs() < 1e-4, "not symmetric: {d1} vs {d2}");
        prop_assert!((-1e-6..=std::f32::consts::PI + 1e-4).contains(&d1));
        prop_assert!(ra.abs_diff(ra).as_f32() < 1e-6);
    }

    /// Packed color round-trips losslessly through f32.
    #[test]
    fn packed_rgba_roundtrip(r in any::<u8>(), g in any::<u8>(), b in any::<u8>(), a in any::<u8>()) {
        let p = PackedRgba::new(r, g, b, a);
        prop_assert_eq!(p.to_rgba().to_packed(), p);
        prop_assert_eq!(PackedRgba::from_u32(p.to_u32()), p);
    }

    /// Color lerp stays inside the channel hull of its endpoints.
    #[test]
    fn rgba_lerp_in_hull(
        a in 0.0f32..1.0, b in 0.0f32..1.0, t in 0.0f32..1.0,
    ) {
        let ca = Rgba::gray(a);
        let cb = Rgba::gray(b);
        let m = ca.lerp(cb, t);
        let lo = a.min(b) - 1e-6;
        let hi = a.max(b) + 1e-6;
        prop_assert!(m.r >= lo && m.r <= hi);
    }

    /// Rectangle intersection is commutative and contained in both
    /// operands; union contains both.
    #[test]
    fn rect_set_algebra(
        ax0 in -50i32..50, ay0 in -50i32..50, aw in 0i32..60, ah in 0i32..60,
        bx0 in -50i32..50, by0 in -50i32..50, bw in 0i32..60, bh in 0i32..60,
    ) {
        let a = Rect::new(ax0, ay0, ax0 + aw, ay0 + ah);
        let b = Rect::new(bx0, by0, bx0 + bw, by0 + bh);
        let i1 = a.intersect(&b);
        let i2 = b.intersect(&a);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1.area() <= a.area() && i1.area() <= b.area());
        let u = a.union(&b);
        prop_assert!(u.area() >= a.area() && u.area() >= b.area());
    }

    /// Tiling covers exactly the rectangle: every pixel of the clipped
    /// rect lies in some produced tile.
    #[test]
    fn rect_tiles_cover(w in 1u32..80, h in 1u32..80, tile in 1u32..32) {
        let r = Rect::from_size(w, h);
        let tiles: Vec<_> = r.tiles(tile).collect();
        // Spot-check the four corners of the rect.
        for (x, y) in [(0, 0), (w - 1, 0), (0, h - 1), (w - 1, h - 1)] {
            let covered = tiles
                .iter()
                .any(|t| t.pixel_rect(tile).contains(x as i32, y as i32));
            prop_assert!(covered, "pixel ({x},{y}) uncovered");
        }
    }

    /// Matrix transforms are linear: M(p + q) == M(p) + M(q) for
    /// directions.
    #[test]
    fn mat4_direction_transform_is_linear(
        px in -10.0f32..10.0, py in -10.0f32..10.0, pz in -10.0f32..10.0,
        qx in -10.0f32..10.0, qy in -10.0f32..10.0, qz in -10.0f32..10.0,
        angle in -3.0f32..3.0,
    ) {
        let m = Mat4::rotation_y(angle);
        let p = Vec3::new(px, py, pz);
        let q = Vec3::new(qx, qy, qz);
        let lhs = m.transform_direction(p + q);
        let rhs = m.transform_direction(p) + m.transform_direction(q);
        prop_assert!((lhs - rhs).length() < 1e-3);
    }

    /// Rotations preserve length.
    #[test]
    fn rotations_are_isometries(
        x in -10.0f32..10.0, y in -10.0f32..10.0, z in -10.0f32..10.0,
        angle in -6.3f32..6.3,
    ) {
        let v = Vec3::new(x, y, z);
        for m in [Mat4::rotation_x(angle), Mat4::rotation_y(angle), Mat4::rotation_z(angle)] {
            let t = m.transform_direction(v);
            prop_assert!((t.length() - v.length()).abs() < 1e-2 * v.length().max(1.0));
        }
    }

    /// Byte counts form a commutative monoid under addition.
    #[test]
    fn byte_count_addition(xs in prop::collection::vec(0u64..1_000_000, 0..20)) {
        let forward: ByteCount = xs.iter().map(|&b| ByteCount::new(b)).sum();
        let backward: ByteCount = xs.iter().rev().map(|&b| ByteCount::new(b)).sum();
        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward.get(), xs.iter().sum::<u64>());
    }

    /// 2D cross product is antisymmetric.
    #[test]
    fn vec2_cross_antisymmetry(
        ax in -100.0f32..100.0, ay in -100.0f32..100.0,
        bx in -100.0f32..100.0, by in -100.0f32..100.0,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        prop_assert!((a.cross(b) + b.cross(a)).abs() < 1e-2);
    }
}
