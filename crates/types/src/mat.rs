//! 4×4 column-major matrices for the geometry pipeline.

use crate::vec::{Vec3, Vec4};

/// A 4×4 matrix, stored column-major like OpenGL.
///
/// Used for model, view, and projection transforms in the geometry
/// processing stage of the simulated GPU.
///
/// # Examples
///
/// ```
/// use pimgfx_types::{Mat4, Vec3};
/// let m = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
/// assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four column vectors.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Returns column `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn col(&self, i: usize) -> Vec4 {
        self.cols[i]
    }

    /// Returns row `i` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn row(&self, i: usize) -> Vec4 {
        match i {
            0 => Vec4::new(
                self.cols[0].x,
                self.cols[1].x,
                self.cols[2].x,
                self.cols[3].x,
            ),
            1 => Vec4::new(
                self.cols[0].y,
                self.cols[1].y,
                self.cols[2].y,
                self.cols[3].y,
            ),
            2 => Vec4::new(
                self.cols[0].z,
                self.cols[1].z,
                self.cols[2].z,
                self.cols[3].z,
            ),
            3 => Vec4::new(
                self.cols[0].w,
                self.cols[1].w,
                self.cols[2].w,
                self.cols[3].w,
            ),
            // lint:allow(no-panic) — documented bounds panic: row() mirrors slice-index semantics for i >= 4
            _ => panic!("matrix row index {i} out of range"),
        }
    }

    /// Translation by `t`.
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale.
    pub fn scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed look-at view matrix.
    ///
    /// `eye` is the camera position, `target` the point looked at, and `up`
    /// the approximate up direction (must not be parallel to the view
    /// direction).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Right-handed perspective projection (OpenGL clip conventions,
    /// z ∈ [-w, w]).
    ///
    /// `fov_y` is the vertical field of view in radians, `aspect` is
    /// width/height.
    ///
    /// # Panics
    ///
    /// Debug-asserts `near > 0`, `far > near`, `aspect > 0` and
    /// `0 < fov_y < π`.
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        debug_assert!(near > 0.0 && far > near, "invalid near/far planes");
        debug_assert!(aspect > 0.0, "invalid aspect ratio");
        debug_assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "invalid field of view"
        );
        let f = 1.0 / (fov_y * 0.5).tan();
        let range = near - far;
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (near + far) / range, -1.0),
            Vec4::new(0.0, 0.0, (2.0 * near * far) / range, 0.0),
        )
    }

    /// Matrix–vector product.
    #[inline]
    pub fn transform(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a point (`w = 1`) and drops back to 3D without
    /// perspective division.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.transform(Vec4::from_point(p)).xyz()
    }

    /// Transforms a direction (`w = 0`).
    #[inline]
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.transform(Vec4::from_direction(d)).xyz()
    }

    /// Matrix–matrix product `self * rhs`.
    pub fn mul_mat(&self, rhs: &Self) -> Self {
        Self {
            cols: [
                self.transform(rhs.cols[0]),
                self.transform(rhs.cols[1]),
                self.transform(rhs.cols[2]),
                self.transform(rhs.cols[3]),
            ],
        }
    }

    /// Transpose.
    pub fn transposed(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2), self.row(3))
    }
}

impl std::ops::Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        self.mul_mat(&rhs)
    }
}

impl std::ops::Mul<Vec4> for Mat4 {
    type Output = Vec4;
    fn mul(self, rhs: Vec4) -> Vec4 {
        self.transform(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: Vec3, b: Vec3, eps: f32) -> bool {
        (a - b).length() < eps
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Mat4::IDENTITY * v, v);
        let m = Mat4::translation(Vec3::new(5.0, 6.0, 7.0));
        assert_eq!(Mat4::IDENTITY * m, m);
        assert_eq!(m * Mat4::IDENTITY, m);
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_direction(Vec3::X), Vec3::X);
    }

    #[test]
    fn scale_scales() {
        let m = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(m.transform_point(Vec3::ONE), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let m = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        assert!(approx(m.transform_point(Vec3::X), Vec3::Y, 1e-6));
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let m = Mat4::rotation_x(std::f32::consts::FRAC_PI_2);
        assert!(approx(m.transform_point(Vec3::Y), Vec3::Z, 1e-6));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        assert!(approx(m.transform_point(Vec3::Z), Vec3::X, 1e-6));
    }

    #[test]
    fn look_at_centers_target_on_negative_z() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let m = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        let t = m.transform_point(Vec3::ZERO);
        assert!(approx(t, Vec3::new(0.0, 0.0, -5.0), 1e-5));
        // The eye maps to the origin.
        assert!(approx(m.transform_point(eye), Vec3::ZERO, 1e-5));
    }

    #[test]
    fn perspective_maps_near_and_far_planes() {
        let near = 1.0;
        let far = 100.0;
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, near, far);
        let pn = (m * Vec4::from_point(Vec3::new(0.0, 0.0, -near))).project();
        let pf = (m * Vec4::from_point(Vec3::new(0.0, 0.0, -far))).project();
        assert!((pn.z + 1.0).abs() < 1e-5, "near plane should map to -1");
        assert!((pf.z - 1.0).abs() < 1e-4, "far plane should map to +1");
    }

    #[test]
    fn matrix_product_composes_transforms() {
        let t = Mat4::translation(Vec3::X);
        let s = Mat4::scale(Vec3::splat(2.0));
        // (t * s) p == t(s(p))
        let p = Vec3::new(1.0, 1.0, 1.0);
        let composed = (t * s).transform_point(p);
        let stepwise = t.transform_point(s.transform_point(p));
        assert!(approx(composed, stepwise, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn row_column_consistency() {
        let m = Mat4::perspective(1.0, 1.5, 0.1, 10.0);
        for i in 0..4 {
            let r = m.row(i);
            assert_eq!(r.x, m.col(0).dot(unit(i)));
            assert_eq!(r.y, m.col(1).dot(unit(i)));
        }
        fn unit(i: usize) -> Vec4 {
            let mut v = Vec4::ZERO;
            match i {
                0 => v.x = 1.0,
                1 => v.y = 1.0,
                2 => v.z = 1.0,
                _ => v.w = 1.0,
            }
            v
        }
    }
}
