//! Small fixed-size `f32` vectors.
//!
//! These are the workhorse types of the functional renderer. They are
//! deliberately minimal: only the operations a software rasterizer and
//! texture filter actually need, with `Copy` semantics and operator
//! overloads that mirror GLSL.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component vector (texture coordinates, screen positions).
///
/// # Examples
///
/// ```
/// use pimgfx_types::Vec2;
/// let uv = Vec2::new(0.25, 0.75);
/// assert_eq!(uv * 4.0, Vec2::new(1.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

/// A 3-component vector (positions, normals, directions).
///
/// # Examples
///
/// ```
/// use pimgfx_types::Vec3;
/// let n = Vec3::new(0.0, 3.0, 4.0).normalized();
/// assert!((n.length() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component homogeneous vector (clip-space positions, RGBA math).
///
/// # Examples
///
/// ```
/// use pimgfx_types::{Vec3, Vec4};
/// let clip = Vec4::from_point(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(clip.w, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };
    /// The all-ones vector.
    pub const ONE: Self = Self { x: 1.0, y: 1.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Creates a vector with both components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// 2D cross product (signed area of the parallelogram), the edge
    /// function used by the rasterizer.
    #[inline]
    pub fn cross(self, rhs: Self) -> f32 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Component-wise linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Self, t: f32) -> Self {
        self + (rhs - self) * t
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `Vec2::ZERO` for the zero vector rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Self::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        Self::new(self.x.min(rhs.x), self.y.min(rhs.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        Self::new(self.x.max(rhs.x), self.y.max(rhs.y))
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Self = Self {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along +X.
    pub const X: Self = Self {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Self = Self {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `Vec3::ZERO` for the zero vector rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Self::ZERO
        }
    }

    /// Component-wise linear interpolation.
    #[inline]
    pub fn lerp(self, rhs: Self, t: f32) -> Self {
        self + (rhs - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        Self::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        Self::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Drops the Z component.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Embeds a 3D point into homogeneous coordinates with `w = 1`.
    #[inline]
    pub const fn from_point(p: Vec3) -> Self {
        Self {
            x: p.x,
            y: p.y,
            z: p.z,
            w: 1.0,
        }
    }

    /// Embeds a 3D direction into homogeneous coordinates with `w = 0`.
    #[inline]
    pub const fn from_direction(d: Vec3) -> Self {
        Self {
            x: d.x,
            y: d.y,
            z: d.z,
            w: 0.0,
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z + self.w * rhs.w
    }

    /// Drops the W component.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective division: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `w != 0`; in release a zero `w` yields infinities,
    /// which the clipper is expected to have removed beforehand.
    #[inline]
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "perspective division by w = 0");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    /// Component-wise linear interpolation.
    #[inline]
    pub fn lerp(self, rhs: Self, t: f32) -> Self {
        self + (rhs - self) * t
    }
}

macro_rules! impl_vec_ops {
    ($ty:ty { $($f:ident),+ }) => {
        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$f += rhs.$f;)+
            }
        }
        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$f -= rhs.$f;)+
            }
        }
        impl Mul<f32> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, rhs: f32) {
                $(self.$f *= rhs;)+
            }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                rhs * self
            }
        }
        impl Div<f32> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }
        impl Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });
impl_vec_ops!(Vec4 { x, y, z, w });

impl From<(f32, f32)> for Vec2 {
    fn from((x, y): (f32, f32)) -> Self {
        Self::new(x, y)
    }
}

impl From<(f32, f32, f32)> for Vec3 {
    fn from((x, y, z): (f32, f32, f32)) -> Self {
        Self::new(x, y, z)
    }
}

impl From<(f32, f32, f32, f32)> for Vec4 {
    fn from((x, y, z, w): (f32, f32, f32, f32)) -> Self {
        Self::new(x, y, z, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn vec2_dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn vec2_lerp_endpoints() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(5.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(3.0, 0.0));
    }

    #[test]
    fn vec3_cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
        let n = Vec3::new(10.0, 0.0, 0.0).normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vec4_projection() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec4_point_vs_direction() {
        let p = Vec4::from_point(Vec3::ONE);
        let d = Vec4::from_direction(Vec3::ONE);
        assert_eq!(p.w, 1.0);
        assert_eq!(d.w, 0.0);
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        assert_eq!(v, Vec3::splat(2.0));
        v -= Vec3::ONE;
        assert_eq!(v, Vec3::ONE);
        v *= 3.0;
        assert_eq!(v, Vec3::splat(3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec2::new(1.0, 5.0);
        let b = Vec2::new(3.0, 2.0);
        assert_eq!(a.min(b), Vec2::new(1.0, 2.0));
        assert_eq!(a.max(b), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn tuple_conversions() {
        assert_eq!(Vec2::from((1.0, 2.0)), Vec2::new(1.0, 2.0));
        assert_eq!(Vec3::from((1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(
            Vec4::from((1.0, 2.0, 3.0, 4.0)),
            Vec4::new(1.0, 2.0, 3.0, 4.0)
        );
    }
}
