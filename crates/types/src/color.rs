//! RGBA colors in floating-point and packed 8-bit-per-channel forms.
//!
//! Texture filtering operates on [`Rgba`] (`f32` per channel, the
//! "four-component (RGBA) color" of the paper's Eq. 1); framebuffers and
//! texture storage use [`PackedRgba`] (32 bits per texel, matching the
//! 4-byte texel size assumed by the traffic model).

use std::ops::{Add, AddAssign, Mul};

/// A linear-space RGBA color with `f32` channels.
///
/// Channel values are nominally in `[0, 1]` but intermediate filtering
/// results may transiently leave that range; [`Rgba::clamped`] restores it.
///
/// # Examples
///
/// ```
/// use pimgfx_types::Rgba;
/// let a = Rgba::new(1.0, 0.0, 0.0, 1.0);
/// let b = Rgba::new(0.0, 0.0, 1.0, 1.0);
/// let mid = a.lerp(b, 0.5);
/// assert_eq!(mid, Rgba::new(0.5, 0.0, 0.5, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rgba {
    /// Red channel.
    pub r: f32,
    /// Green channel.
    pub g: f32,
    /// Blue channel.
    pub b: f32,
    /// Alpha channel.
    pub a: f32,
}

/// A packed 8-bit-per-channel RGBA color (one 32-bit texel / pixel).
///
/// # Examples
///
/// ```
/// use pimgfx_types::PackedRgba;
/// let px = PackedRgba::new(255, 128, 0, 255);
/// assert_eq!(px.to_u32(), 0xFF00_80FF);
/// assert_eq!(PackedRgba::from_u32(px.to_u32()), px);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedRgba {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
    /// Alpha channel.
    pub a: u8,
}

impl Rgba {
    /// Opaque black.
    pub const BLACK: Self = Self {
        r: 0.0,
        g: 0.0,
        b: 0.0,
        a: 1.0,
    };
    /// Opaque white.
    pub const WHITE: Self = Self {
        r: 1.0,
        g: 1.0,
        b: 1.0,
        a: 1.0,
    };
    /// Fully transparent black (the additive identity).
    pub const TRANSPARENT: Self = Self {
        r: 0.0,
        g: 0.0,
        b: 0.0,
        a: 0.0,
    };

    /// Creates a color from channels.
    #[inline]
    pub const fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Self { r, g, b, a }
    }

    /// Creates an opaque gray with all color channels set to `v`.
    #[inline]
    pub const fn gray(v: f32) -> Self {
        Self {
            r: v,
            g: v,
            b: v,
            a: 1.0,
        }
    }

    /// Channel-wise linear interpolation: `self * (1 - t) + rhs * t`.
    ///
    /// This is the elementary operation of bilinear, trilinear, and
    /// anisotropic filtering.
    #[inline]
    pub fn lerp(self, rhs: Self, t: f32) -> Self {
        self * (1.0 - t) + rhs * t
    }

    /// Clamps every channel into `[0, 1]`.
    #[inline]
    pub fn clamped(self) -> Self {
        Self::new(
            self.r.clamp(0.0, 1.0),
            self.g.clamp(0.0, 1.0),
            self.b.clamp(0.0, 1.0),
            self.a.clamp(0.0, 1.0),
        )
    }

    /// Converts to packed 8-bit form with rounding and clamping.
    #[inline]
    pub fn to_packed(self) -> PackedRgba {
        #[inline]
        fn q(v: f32) -> u8 {
            (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u8
        }
        PackedRgba::new(q(self.r), q(self.g), q(self.b), q(self.a))
    }

    /// Maximum absolute channel difference against `rhs` (used by quality
    /// metrics and approximation tests).
    #[inline]
    pub fn max_channel_diff(self, rhs: Self) -> f32 {
        (self.r - rhs.r)
            .abs()
            .max((self.g - rhs.g).abs())
            .max((self.b - rhs.b).abs())
            .max((self.a - rhs.a).abs())
    }

    /// Channel-wise multiplication (modulation), e.g. lighting × texture.
    #[inline]
    pub fn modulate(self, rhs: Self) -> Self {
        Self::new(
            self.r * rhs.r,
            self.g * rhs.g,
            self.b * rhs.b,
            self.a * rhs.a,
        )
    }
}

/// 256-entry unpack table: `UNPACK[v]` holds exactly `v as f32 / 255.0`,
/// so table lookup and division produce bit-identical channels.
const UNPACK: [f32; 256] = {
    let mut t = [0.0f32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = i as f32 / 255.0;
        i += 1;
    }
    t
};

impl PackedRgba {
    /// Creates a packed color from 8-bit channels.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8, a: u8) -> Self {
        Self { r, g, b, a }
    }

    /// Unpacks to floating point channels in `[0, 1]`.
    #[inline]
    pub fn to_rgba(self) -> Rgba {
        Rgba::new(
            f32::from(self.r) / 255.0,
            f32::from(self.g) / 255.0,
            f32::from(self.b) / 255.0,
            f32::from(self.a) / 255.0,
        )
    }

    /// Table-driven unpack used by the lane kernels: bit-identical to
    /// [`PackedRgba::to_rgba`] for every possible channel value (the
    /// table stores the same `v / 255.0` quotients), but replaces four
    /// float divisions with four L1-resident loads.
    #[inline]
    pub fn to_rgba_fast(self) -> Rgba {
        Rgba::new(
            UNPACK[self.r as usize],
            UNPACK[self.g as usize],
            UNPACK[self.b as usize],
            UNPACK[self.a as usize],
        )
    }

    /// Packs to a single `u32` as `0xAABBGGRR` (little-endian RGBA memory
    /// order).
    #[inline]
    pub const fn to_u32(self) -> u32 {
        (self.r as u32) | ((self.g as u32) << 8) | ((self.b as u32) << 16) | ((self.a as u32) << 24)
    }

    /// Inverse of [`PackedRgba::to_u32`].
    #[inline]
    pub const fn from_u32(v: u32) -> Self {
        Self {
            r: (v & 0xFF) as u8,
            g: ((v >> 8) & 0xFF) as u8,
            b: ((v >> 16) & 0xFF) as u8,
            a: ((v >> 24) & 0xFF) as u8,
        }
    }
}

impl Add for Rgba {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(
            self.r + rhs.r,
            self.g + rhs.g,
            self.b + rhs.b,
            self.a + rhs.a,
        )
    }
}

impl AddAssign for Rgba {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul<f32> for Rgba {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f32) -> Self {
        Self::new(self.r * rhs, self.g * rhs, self.b * rhs, self.a * rhs)
    }
}

impl From<PackedRgba> for Rgba {
    fn from(p: PackedRgba) -> Self {
        p.to_rgba()
    }
}

impl From<Rgba> for PackedRgba {
    fn from(c: Rgba) -> Self {
        c.to_packed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_is_nearly_lossless() {
        for v in [0u8, 1, 127, 128, 254, 255] {
            let p = PackedRgba::new(v, v, v, v);
            assert_eq!(p.to_rgba().to_packed(), p);
        }
    }

    #[test]
    fn fast_unpack_is_bit_identical_for_all_channel_values() {
        for v in 0..=255u8 {
            let p = PackedRgba::new(v, v.wrapping_add(1), v.wrapping_mul(3), 255 - v);
            let slow = p.to_rgba();
            let fast = p.to_rgba_fast();
            assert_eq!(slow.r.to_bits(), fast.r.to_bits());
            assert_eq!(slow.g.to_bits(), fast.g.to_bits());
            assert_eq!(slow.b.to_bits(), fast.b.to_bits());
            assert_eq!(slow.a.to_bits(), fast.a.to_bits());
        }
    }

    #[test]
    fn u32_roundtrip() {
        let p = PackedRgba::new(0x12, 0x34, 0x56, 0x78);
        assert_eq!(PackedRgba::from_u32(p.to_u32()), p);
        assert_eq!(p.to_u32(), 0x7856_3412);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgba::BLACK;
        let b = Rgba::WHITE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Rgba::new(0.25, 0.25, 0.25, 1.0));
    }

    #[test]
    fn clamp_restores_range() {
        let c = Rgba::new(-0.5, 1.5, 0.5, 2.0).clamped();
        assert_eq!(c, Rgba::new(0.0, 1.0, 0.5, 1.0));
    }

    #[test]
    fn to_packed_rounds() {
        // 0.5 * 255 = 127.5 rounds to 128.
        assert_eq!(Rgba::gray(0.5).to_packed().r, 128);
        // Out-of-range values clamp.
        assert_eq!(Rgba::gray(2.0).to_packed().r, 255);
        assert_eq!(Rgba::new(-1.0, 0.0, 0.0, 1.0).to_packed().r, 0);
    }

    #[test]
    fn max_channel_diff_picks_largest() {
        let a = Rgba::new(0.1, 0.5, 0.9, 1.0);
        let b = Rgba::new(0.2, 0.1, 0.8, 1.0);
        assert!((a.max_channel_diff(b) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn modulate_is_channelwise() {
        let a = Rgba::new(0.5, 1.0, 0.0, 1.0);
        let b = Rgba::new(1.0, 0.5, 0.7, 1.0);
        assert_eq!(a.modulate(b), Rgba::new(0.5, 0.5, 0.0, 1.0));
    }

    #[test]
    fn addition_identity() {
        let c = Rgba::new(0.3, 0.4, 0.5, 0.6);
        assert_eq!(c + Rgba::TRANSPARENT, c);
    }
}
