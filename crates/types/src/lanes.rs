//! Portable lane kernels for the SIMD replay backend.
//!
//! The workspace forbids `unsafe` (lint wall), so vectorization is done
//! with *portable chunked kernels*: small fixed-width array types that
//! the optimizer lowers to SSE/NEON vector instructions. Every lane
//! operation is defined **per lane** with exactly the scalar operation
//! order, so a lane kernel produces bit-identical results to the scalar
//! reference it replaces — see `docs/PERFORMANCE.md` for the
//! byte-identity vs documented-ULP acceptance policy.
//!
//! Two things live here:
//!
//! * [`KernelMode`] — the runtime dispatch switch between the scalar
//!   reference kernels and the lane kernels. Both paths are always
//!   compiled; the `simd` cargo feature only flips the *default* mode,
//!   which keeps SIMD-on/off equivalence testable inside one binary.
//! * [`F32x4`] / [`F32x8`] — the lane vectors. `F32x4` maps one RGBA
//!   color across 4 lanes (channel-major); `F32x8` maps a pair.
//!
//! # Examples
//!
//! ```
//! use pimgfx_types::{F32x4, Rgba};
//!
//! let a = F32x4::from_rgba(Rgba::new(1.0, 0.0, 0.0, 1.0));
//! let b = F32x4::from_rgba(Rgba::new(0.0, 0.0, 1.0, 1.0));
//! // Bit-identical to Rgba::lerp: a * (1 - t) + b * t, per lane.
//! assert_eq!(a.lerp(b, 0.5).to_rgba(), Rgba::new(0.5, 0.0, 0.5, 1.0));
//! ```

use crate::color::Rgba;
use std::ops::{Add, Mul, Sub};

/// Which replay kernels to run: the scalar reference or the lane kernels.
///
/// The scalar kernels are the *reference implementation*; the lane
/// kernels are required (and tested) to reproduce them bit-for-bit
/// unless a kernel carries an explicit `float:reassoc-ok` marker with a
/// documented ULP bound. Defaults are chosen by [`KernelMode::active`],
/// but every consumer threads an explicit mode through its config so
/// both paths can run in one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Straight-line scalar loops — the reference implementation.
    #[cfg_attr(not(feature = "simd"), default)]
    Scalar,
    /// Portable chunked lane kernels (4–8 lanes per step).
    #[cfg_attr(feature = "simd", default)]
    Lanes,
}

impl KernelMode {
    /// The build's default mode: [`KernelMode::Lanes`] when the `simd`
    /// cargo feature is enabled, [`KernelMode::Scalar`] otherwise.
    #[inline]
    #[must_use]
    pub fn active() -> Self {
        Self::default()
    }

    /// `true` when this mode selects the lane kernels.
    #[inline]
    #[must_use]
    pub fn is_lanes(self) -> bool {
        matches!(self, Self::Lanes)
    }
}

/// Four `f32` lanes, operated on element-wise.
///
/// The canonical mapping is channel-major: one [`Rgba`] color occupies
/// the four lanes `[r, g, b, a]`, so a lane `lerp` performs the four
/// independent channel lerps of [`Rgba::lerp`] in one step with the
/// identical per-channel operation order (bit-identical results).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F32x4(pub [f32; 4]);

/// Eight `f32` lanes — two channel-major RGBA colors side by side.
///
/// Used where the replay loop pairs adjacent fragments (e.g. the two
/// bilinear taps of a trilinear sample, or two quad fragments) so one
/// chunked operation covers both.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(transparent)]
pub struct F32x8(pub [f32; 8]);

macro_rules! lane_impl {
    ($name:ident, $n:literal) => {
        impl $name {
            /// All lanes zero.
            pub const ZERO: Self = Self([0.0; $n]);

            /// Number of lanes.
            pub const LANES: usize = $n;

            /// Broadcasts `v` into every lane.
            #[inline]
            #[must_use]
            pub const fn splat(v: f32) -> Self {
                Self([v; $n])
            }

            /// Wraps an array of lane values.
            #[inline]
            #[must_use]
            pub const fn from_array(v: [f32; $n]) -> Self {
                Self(v)
            }

            /// Returns the lane values.
            #[inline]
            #[must_use]
            pub const fn to_array(self) -> [f32; $n] {
                self.0
            }

            /// Per-lane linear interpolation `self * (1 - t) + rhs * t`
            /// — the exact [`Rgba::lerp`] formula applied lane-wise, so
            /// results are bit-identical to the scalar kernel.
            #[inline]
            #[must_use]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                let mut out = [0.0f32; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i] * (1.0 - t) + rhs.0[i] * t;
                    i += 1;
                }
                Self(out)
            }

            /// Per-lane clamp into `[0, 1]` (the `Rgba::clamped` op).
            #[inline]
            #[must_use]
            pub fn clamp01(self) -> Self {
                let mut out = self.0;
                let mut i = 0;
                while i < $n {
                    out[i] = out[i].clamp(0.0, 1.0);
                    i += 1;
                }
                Self(out)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                let mut out = [0.0f32; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i] + rhs.0[i];
                    i += 1;
                }
                Self(out)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                let mut out = [0.0f32; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i] - rhs.0[i];
                    i += 1;
                }
                Self(out)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                let mut out = [0.0f32; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i] * rhs.0[i];
                    i += 1;
                }
                Self(out)
            }
        }

        impl Mul<f32> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f32) -> Self {
                let mut out = [0.0f32; $n];
                let mut i = 0;
                while i < $n {
                    out[i] = self.0[i] * rhs;
                    i += 1;
                }
                Self(out)
            }
        }
    };
}

lane_impl!(F32x4, 4);
lane_impl!(F32x8, 8);

impl F32x4 {
    /// Loads one color channel-major: lanes `[r, g, b, a]`.
    #[inline]
    #[must_use]
    pub const fn from_rgba(c: Rgba) -> Self {
        Self([c.r, c.g, c.b, c.a])
    }

    /// Stores the lanes back to a color.
    #[inline]
    #[must_use]
    pub const fn to_rgba(self) -> Rgba {
        Rgba::new(self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl F32x8 {
    /// Loads two colors channel-major: lanes `[a.r..a.a, b.r..b.a]`.
    #[inline]
    #[must_use]
    pub const fn from_rgba2(a: Rgba, b: Rgba) -> Self {
        Self([a.r, a.g, a.b, a.a, b.r, b.g, b.b, b.a])
    }

    /// Stores the lanes back to two colors.
    #[inline]
    #[must_use]
    pub const fn to_rgba2(self) -> (Rgba, Rgba) {
        (
            Rgba::new(self.0[0], self.0[1], self.0[2], self.0[3]),
            Rgba::new(self.0[4], self.0[5], self.0[6], self.0[7]),
        )
    }

    /// Per-lane lerp with *two* interpolation factors: lanes 0–3 use
    /// `t0`, lanes 4–7 use `t1`. Each half matches [`Rgba::lerp`]
    /// bit-for-bit.
    #[inline]
    #[must_use]
    pub fn lerp2(self, rhs: Self, t0: f32, t1: f32) -> Self {
        let mut out = [0.0f32; 8];
        let mut i = 0;
        while i < 4 {
            out[i] = self.0[i] * (1.0 - t0) + rhs.0[i] * t0;
            i += 1;
        }
        while i < 8 {
            out[i] = self.0[i] * (1.0 - t1) + rhs.0[i] * t1;
            i += 1;
        }
        Self(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_tracks_feature() {
        let expect = if cfg!(feature = "simd") {
            KernelMode::Lanes
        } else {
            KernelMode::Scalar
        };
        assert_eq!(KernelMode::active(), expect);
        assert_eq!(KernelMode::default(), expect);
    }

    #[test]
    fn lane_lerp_is_bit_identical_to_rgba_lerp() {
        // Awkward values that would expose any reassociation.
        let a = Rgba::new(0.1, 0.7, 1e-7, 0.33333334);
        let b = Rgba::new(0.9, 0.2, 3.0e6, 0.6666667);
        for t in [0.0, 0.125, 0.3, 0.5, 0.77, 1.0, 1.5, -0.25] {
            let scalar = a.lerp(b, t);
            let lanes = F32x4::from_rgba(a).lerp(F32x4::from_rgba(b), t).to_rgba();
            assert_eq!(scalar.r.to_bits(), lanes.r.to_bits());
            assert_eq!(scalar.g.to_bits(), lanes.g.to_bits());
            assert_eq!(scalar.b.to_bits(), lanes.b.to_bits());
            assert_eq!(scalar.a.to_bits(), lanes.a.to_bits());
        }
    }

    #[test]
    fn wide_lerp2_matches_two_scalar_lerps() {
        let a0 = Rgba::new(0.25, 0.5, 0.75, 1.0);
        let a1 = Rgba::new(0.9, 0.1, 0.4, 0.2);
        let b0 = Rgba::new(0.6, 0.3, 0.2, 0.8);
        let b1 = Rgba::new(0.05, 0.95, 0.55, 0.45);
        let wide = F32x8::from_rgba2(a0, a1).lerp2(F32x8::from_rgba2(b0, b1), 0.3, 0.8);
        let (c0, c1) = wide.to_rgba2();
        assert_eq!(c0, a0.lerp(b0, 0.3));
        assert_eq!(c1, a1.lerp(b1, 0.8));
    }

    #[test]
    fn arithmetic_matches_rgba_ops() {
        let a = Rgba::new(0.1, 0.2, 0.3, 0.4);
        let b = Rgba::new(0.5, 0.6, 0.7, 0.8);
        let sum = (F32x4::from_rgba(a) + F32x4::from_rgba(b)).to_rgba();
        assert_eq!(sum, a + b);
        let scaled = (F32x4::from_rgba(a) * 2.5).to_rgba();
        assert_eq!(scaled, a * 2.5);
    }

    #[test]
    fn clamp01_matches_clamped() {
        let c = Rgba::new(-0.5, 1.5, 0.5, 2.0);
        assert_eq!(F32x4::from_rgba(c).clamp01().to_rgba(), c.clamped());
    }
}
