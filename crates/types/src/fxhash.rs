//! Deterministic FxHash-style hasher and map aliases.
//!
//! The std `HashMap` default (`RandomState`/SipHash) seeds itself from
//! process entropy, so iteration order differs run to run — a silent
//! determinism hazard for any map whose contents ever reach a report,
//! manifest, or CSV, and a profile hotspot on the per-texel and per-quad
//! maps. Keys in this workspace are small integer tuples with no
//! adversarial source, so a fixed-seed multiply-rotate mix is both
//! sufficient and much cheaper.
//!
//! [`FxHashMap`] / [`FxHashSet`] are the sanctioned alternatives the
//! `nondeterminism` lint points at (`docs/STATIC_ANALYSIS.md`): same
//! API, deterministic hash, no ambient seeding. Note that hash-order
//! iteration is still *arbitrary* (insertion-dependent), just
//! reproducible; data that must come out sorted belongs in a `BTreeMap`
//! or behind an explicit sort.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// Multiply-rotate hasher over the written words.
#[derive(Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into the std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic [`FxHasher`]; construct with
/// `FxHashMap::default()` or `with_capacity_and_hasher`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic [`FxHasher`]; construct with
/// `FxHashSet::default()` or `with_capacity_and_hasher`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn hashes_are_stable_across_hashers() {
        let key = (3u32, 7u32, 11u32);
        assert_eq!(hash_of(&key), hash_of(&key));
        assert_ne!(hash_of(&key), hash_of(&(3u32, 7u32, 12u32)));
    }

    #[test]
    fn map_and_set_aliases_round_trip() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 42);
        assert_eq!(m.get(&(1, 2)), Some(&42));

        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }
}
