//! Small deterministic pseudo-random number generator.
//!
//! The workspace builds offline with no external crates, so the
//! procedural workload generators use this tiny splitmix64/xorshift
//! generator instead of `rand`. It is **not** cryptographic and is not
//! meant to be: scene synthesis only needs a stream that is (a) fully
//! determined by the seed, so every simulator run is reproducible, and
//! (b) well-mixed enough that textures and bump fields carry no visible
//! lattice artifacts.

/// A seeded, deterministic PRNG (xorshift64* seeded through splitmix64).
///
/// # Examples
///
/// ```
/// use pimgfx_types::TinyRng;
/// let mut a = TinyRng::seed_from_u64(7);
/// let mut b = TinyRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "deterministic in the seed");
/// let x = a.gen_range_f32(0.25, 0.75);
/// assert!((0.25..0.75).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct TinyRng {
    state: u64,
}

impl TinyRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    ///
    /// The seed is pre-mixed with one splitmix64 round so that nearby
    /// seeds (0, 1, 2, ...) produce uncorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer over the raw seed; also guarantees the
        // xorshift state is nonzero (xorshift64* has a fixed point at 0).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): full 2^64-1 period, passes BigCrush on
        // the high bits, which are the ones `next_f32` consumes.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f32` in `[0, 1)` built from the high 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        const SCALE: f32 = 1.0 / (1u32 << 24) as f32;
        (self.next_u64() >> 40) as f32 * SCALE
    }

    /// A uniform `f32` in `[lo, hi)` (returns `lo` when the range is
    /// empty or inverted, keeping generation total).
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TinyRng::seed_from_u64(42);
        let mut b = TinyRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = TinyRng::seed_from_u64(1);
        let mut b = TinyRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = TinyRng::seed_from_u64(0);
        assert_ne!(
            r.next_u64(),
            0,
            "state must escape the xorshift fixed point"
        );
    }

    #[test]
    fn f32_stays_in_unit_interval() {
        let mut r = TinyRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = TinyRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x), "{x} out of [-2,3)");
        }
        assert_eq!(r.gen_range_f32(1.0, 1.0), 1.0, "empty range returns lo");
    }

    #[test]
    fn roughly_uniform() {
        // Bucket 10k draws into 10 bins; each should land near 1000.
        let mut r = TinyRng::seed_from_u64(5);
        let mut bins = [0u32; 10];
        for _ in 0..10_000 {
            bins[(r.next_f32() * 10.0) as usize] += 1;
        }
        for (i, &n) in bins.iter().enumerate() {
            assert!((800..1200).contains(&n), "bin {i} has {n} draws");
        }
    }
}
