//! Shared primitive types for the `pim-render` GPU simulator.
//!
//! This crate provides the small, dependency-free vocabulary used by every
//! other crate in the workspace:
//!
//! * [`vec`](mod@vec) — 2/3/4-component `f32` vectors with the usual linear-algebra
//!   operations needed by a software rasterizer.
//! * [`mat`] — 4×4 column-major matrices (model/view/projection transforms).
//! * [`color`] — RGBA colors in both `f32` and packed 8-bit forms.
//! * [`angle`] — a radians newtype used for the camera-angle approximation
//!   threshold of the A-TFIM design.
//! * [`rect`] — integer rectangles and screen-tile arithmetic.
//! * [`ids`] — typed identifiers (textures, shader clusters, vaults, ...).
//! * [`bytes`] — byte-count newtype with human-readable formatting.
//! * [`fxhash`] — deterministic FxHash-style hasher plus `FxHashMap`/`FxHashSet`
//!   aliases (the sanctioned alternative to ambient-seeded std maps).
//! * [`rng`] — a tiny deterministic PRNG for procedural workload synthesis.
//! * [`error`] — the common error type returned by simulator constructors.
//!
//! # Examples
//!
//! ```
//! use pimgfx_types::{Vec3, Mat4, Rgba};
//!
//! let eye = Vec3::new(0.0, 1.0, 5.0);
//! let view = Mat4::look_at(eye, Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
//! let p = view.transform_point(Vec3::ZERO);
//! assert!((p.z + eye.length()).abs() < 1e-4);
//!
//! let teal = Rgba::new(0.0, 0.5, 0.5, 1.0);
//! assert_eq!(teal.to_packed().r, 0);
//! ```

// --- lint wall (checked byte-for-byte by `cargo xtask lint`) ---
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)]

/// Angles as a `Radians` newtype (anisotropy thresholds, camera deltas).
pub mod angle;
/// Traffic and capacity accounting as a `ByteCount` newtype.
pub mod bytes;
/// Linear and packed sRGB color types for the functional renderer.
pub mod color;
/// The workspace-wide `Error` type and `Result` alias.
pub mod error;
/// Deterministic FxHash-style hasher and `FxHashMap`/`FxHashSet` aliases.
pub mod fxhash;
/// Typed identifiers (textures, clusters, vaults, requests, frames).
pub mod ids;
/// Portable lane kernels and the scalar/lanes [`KernelMode`] switch.
pub mod lanes;
/// 4×4 column-major matrices for the geometry pipeline.
pub mod mat;
/// Integer rectangles and screen-tile arithmetic.
pub mod rect;
/// Small deterministic RNG for the synthetic workloads.
pub mod rng;
/// Small fixed-size `f32` vectors for geometry and shading.
pub mod vec;

pub use angle::Radians;
pub use bytes::ByteCount;
pub use color::{PackedRgba, Rgba};
pub use error::{ConfigError, Error, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{ClusterId, FrameId, RequestId, TextureId, VaultId};
pub use lanes::{F32x4, F32x8, KernelMode};
pub use mat::Mat4;
pub use rect::{Rect, TileCoord};
pub use rng::TinyRng;
pub use vec::{Vec2, Vec3, Vec4};
