//! Byte-count newtype for traffic accounting.
//!
//! The paper's Figs. 2 and 12 are traffic measurements; keeping byte counts
//! in a dedicated type avoids mixing them with cycle counts or texel counts
//! in the statistics plumbing.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A number of bytes transferred or stored.
///
/// # Examples
///
/// ```
/// use pimgfx_types::ByteCount;
/// let request = ByteCount::new(16);
/// let cache_line = ByteCount::new(64);
/// assert_eq!((request + cache_line).get(), 80);
/// assert_eq!(ByteCount::from_kib(2).get(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteCount(u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: Self = Self(0);

    /// Creates a byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a byte count from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a byte count from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }

    /// The raw byte value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Value in (fractional) kibibytes.
    #[inline]
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Value in (fractional) mebibytes.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an event count (e.g. `bytes_per_request * requests`).
    #[inline]
    pub const fn times(self, n: u64) -> Self {
        Self(self.0 * n)
    }

    /// Ratio of this count to `base` (`NaN` if `base` is zero and `self`
    /// nonzero, `0.0` when both are zero).
    #[inline]
    pub fn ratio_to(self, base: Self) -> f64 {
        if base.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::NAN
            }
        } else {
            self.0 as f64 / base.0 as f64
        }
    }
}

impl Add for ByteCount {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteCount {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on underflow in debug builds (standard integer semantics).
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for ByteCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteCount::from_kib(1).get(), 1024);
        assert_eq!(ByteCount::from_mib(1).get(), 1024 * 1024);
    }

    #[test]
    fn arithmetic() {
        let a = ByteCount::new(100);
        let b = ByteCount::new(28);
        assert_eq!((a + b).get(), 128);
        assert_eq!((a - b).get(), 72);
        assert_eq!(b.saturating_sub(a), ByteCount::ZERO);
        assert_eq!(a.times(3).get(), 300);
    }

    #[test]
    fn sum_over_iterator() {
        let total: ByteCount = (1..=4).map(ByteCount::new).sum();
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn ratio_handles_zero_base() {
        assert_eq!(ByteCount::ZERO.ratio_to(ByteCount::ZERO), 0.0);
        assert!(ByteCount::new(5).ratio_to(ByteCount::ZERO).is_nan());
        assert_eq!(ByteCount::new(50).ratio_to(ByteCount::new(100)), 0.5);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteCount::new(512).to_string(), "512 B");
        assert_eq!(ByteCount::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteCount::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteCount::from_mib(2048).to_string(), "2.00 GiB");
    }
}
