//! Typed identifiers used across the simulator.
//!
//! Newtypes keep texture handles, shader-cluster indices, HMC vault indices,
//! memory-request tags and frame numbers from being accidentally mixed.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize` (for array indexing).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// Handle to a texture resident in simulated memory.
    TextureId,
    "tex"
);

id_newtype!(
    /// Index of a unified-shader cluster (each cluster owns one texture
    /// unit, per Table I).
    ClusterId,
    "cluster"
);

id_newtype!(
    /// Index of an HMC vault (a controller plus its DRAM bank stack).
    VaultId,
    "vault"
);

id_newtype!(
    /// Frame sequence number within a rendered trace.
    FrameId,
    "frame"
);

/// Tag for an in-flight memory or texture request.
///
/// 64-bit because a single frame at high resolution can issue hundreds of
/// millions of texel fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Creates a request tag.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw tag.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The next sequential tag.
    #[inline]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TextureId::new(3).to_string(), "tex3");
        assert_eq!(ClusterId::new(0).to_string(), "cluster0");
        assert_eq!(VaultId::new(31).to_string(), "vault31");
        assert_eq!(FrameId::new(7).to_string(), "frame7");
        assert_eq!(RequestId::new(42).to_string(), "req42");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(TextureId::new(1) < TextureId::new(2));
        assert!(RequestId::new(10) > RequestId::new(9));
    }

    #[test]
    fn request_id_next_increments() {
        assert_eq!(RequestId::new(0).next(), RequestId::new(1));
    }

    #[test]
    fn index_conversion() {
        assert_eq!(VaultId::new(5).index(), 5usize);
        assert_eq!(VaultId::from(9u32).raw(), 9);
    }
}
