//! Integer rectangles and screen-tile arithmetic.
//!
//! The simulated rasterizer is tile-based (16×16 pixel tiles per Table I of
//! the paper); these helpers keep the tile bookkeeping in one place.

use std::fmt;

/// An axis-aligned integer rectangle, half-open on the max edge:
/// `x ∈ [x0, x1)`, `y ∈ [y0, y1)`.
///
/// # Examples
///
/// ```
/// use pimgfx_types::Rect;
/// let screen = Rect::from_size(640, 480);
/// assert_eq!(screen.area(), 640 * 480);
/// assert!(screen.contains(0, 0));
/// assert!(!screen.contains(640, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Inclusive minimum x.
    pub x0: i32,
    /// Inclusive minimum y.
    pub y0: i32,
    /// Exclusive maximum x.
    pub x1: i32,
    /// Exclusive maximum y.
    pub y1: i32,
}

/// Coordinates of a screen tile in tile units.
///
/// # Examples
///
/// ```
/// use pimgfx_types::TileCoord;
/// let t = TileCoord::new(2, 3);
/// assert_eq!(t.pixel_rect(16).x0, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Tile column.
    pub tx: u32,
    /// Tile row.
    pub ty: u32,
}

impl Rect {
    /// An empty rectangle at the origin.
    pub const EMPTY: Self = Self {
        x0: 0,
        y0: 0,
        x1: 0,
        y1: 0,
    };

    /// Creates a rectangle from corners. Degenerate inputs (max < min) are
    /// normalized to an empty rectangle at `(x0, y0)`.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self {
            x0,
            y0,
            x1: x1.max(x0),
            y1: y1.max(y0),
        }
    }

    /// Creates a rectangle anchored at the origin with the given size.
    pub fn from_size(width: u32, height: u32) -> Self {
        Self::new(0, 0, width as i32, height as i32)
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        (self.x1 - self.x0) as u32
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        (self.y1 - self.y0) as u32
    }

    /// Number of pixels covered.
    #[inline]
    pub fn area(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }

    /// True when the rectangle covers no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// True when the pixel `(x, y)` lies inside.
    #[inline]
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Intersection with `rhs` (empty if disjoint).
    pub fn intersect(&self, rhs: &Self) -> Self {
        let x0 = self.x0.max(rhs.x0);
        let y0 = self.y0.max(rhs.y0);
        let x1 = self.x1.min(rhs.x1);
        let y1 = self.y1.min(rhs.y1);
        if x0 >= x1 || y0 >= y1 {
            Self::EMPTY
        } else {
            Self { x0, y0, x1, y1 }
        }
    }

    /// Smallest rectangle containing both `self` and `rhs`.
    ///
    /// Empty rectangles are treated as the identity.
    pub fn union(&self, rhs: &Self) -> Self {
        if self.is_empty() {
            return *rhs;
        }
        if rhs.is_empty() {
            return *self;
        }
        Self {
            x0: self.x0.min(rhs.x0),
            y0: self.y0.min(rhs.y0),
            x1: self.x1.max(rhs.x1),
            y1: self.y1.max(rhs.y1),
        }
    }

    /// Iterates over the tiles of size `tile` (pixels) that overlap this
    /// rectangle, in row-major order. Negative-coordinate regions are
    /// clipped away (screen space starts at the origin).
    pub fn tiles(&self, tile: u32) -> impl Iterator<Item = TileCoord> {
        assert!(tile > 0, "tile size must be positive");
        let clipped = self.intersect(&Rect::new(0, 0, i32::MAX, i32::MAX));
        let (tx0, ty0, tx1, ty1) = if clipped.is_empty() {
            (0, 0, 0, 0)
        } else {
            (
                clipped.x0 as u32 / tile,
                clipped.y0 as u32 / tile,
                (clipped.x1 as u32).div_ceil(tile),
                (clipped.y1 as u32).div_ceil(tile),
            )
        };
        (ty0..ty1).flat_map(move |ty| (tx0..tx1).map(move |tx| TileCoord::new(tx, ty)))
    }
}

impl TileCoord {
    /// Creates tile coordinates.
    #[inline]
    pub const fn new(tx: u32, ty: u32) -> Self {
        Self { tx, ty }
    }

    /// The pixel rectangle covered by this tile for a given tile size.
    pub fn pixel_rect(&self, tile: u32) -> Rect {
        let x0 = (self.tx * tile) as i32;
        let y0 = (self.ty * tile) as i32;
        Rect::new(x0, y0, x0 + tile as i32, y0 + tile as i32)
    }

    /// Row-major linear index within a screen of `tiles_x` tile columns.
    #[inline]
    pub fn linear_index(&self, tiles_x: u32) -> u64 {
        u64::from(self.ty) * u64::from(tiles_x) + u64::from(self.tx)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})×[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile({},{})", self.tx, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_inputs_normalize_to_empty() {
        let r = Rect::new(5, 5, 1, 1);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn contains_is_half_open() {
        let r = Rect::from_size(4, 4);
        assert!(r.contains(0, 0));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 3));
        assert!(!r.contains(3, 4));
        assert!(!r.contains(-1, 0));
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = Rect::from_size(10, 10);
        let b = Rect::new(20, 20, 30, 30);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn intersection_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(8, 8, 10, 10);
        let u = a.union(&b);
        assert!(u.contains(0, 0) && u.contains(9, 9));
        assert_eq!(u, Rect::new(0, 0, 10, 10));
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
    }

    #[test]
    fn tiles_cover_exactly_overlapped_tiles() {
        // A 20x20 rect with 16px tiles spans tiles (0,0)..(1,1) inclusive.
        let r = Rect::from_size(20, 20);
        let tiles: Vec<_> = r.tiles(16).collect();
        assert_eq!(
            tiles,
            vec![
                TileCoord::new(0, 0),
                TileCoord::new(1, 0),
                TileCoord::new(0, 1),
                TileCoord::new(1, 1)
            ]
        );
    }

    #[test]
    fn tiles_of_empty_rect_is_empty() {
        assert_eq!(Rect::EMPTY.tiles(16).count(), 0);
    }

    #[test]
    fn tiles_clip_negative_coordinates() {
        let r = Rect::new(-32, -32, 16, 16);
        let tiles: Vec<_> = r.tiles(16).collect();
        assert_eq!(tiles, vec![TileCoord::new(0, 0)]);
    }

    #[test]
    fn tile_pixel_rect_roundtrip() {
        let t = TileCoord::new(3, 7);
        let r = t.pixel_rect(16);
        assert_eq!(r, Rect::new(48, 112, 64, 128));
        assert_eq!(r.tiles(16).collect::<Vec<_>>(), vec![t]);
    }

    #[test]
    fn linear_index_is_row_major() {
        assert_eq!(TileCoord::new(0, 0).linear_index(10), 0);
        assert_eq!(TileCoord::new(9, 0).linear_index(10), 9);
        assert_eq!(TileCoord::new(0, 1).linear_index(10), 10);
    }
}
