//! Angle newtype used by the A-TFIM camera-angle approximation.
//!
//! The A-TFIM design tags each texture-cache line with the camera angle of
//! the pixel that produced the cached parent texel. A later fetch may reuse
//! the cached value only when the absolute angular difference is below a
//! configurable threshold (the paper sweeps 0.005π … 0.1π radians).

use std::fmt;
use std::ops::{Add, Sub};

/// An angle in radians.
///
/// Kept as a newtype so thresholds in degrees and radians cannot be mixed
/// up (the paper quotes both: 1.8° = 0.01π rad).
///
/// # Examples
///
/// ```
/// use pimgfx_types::Radians;
/// let t = Radians::from_degrees(1.8);
/// assert!((t.as_f32() - Radians::from_pi_fraction(0.01).as_f32()).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Radians(f32);

impl Radians {
    /// The zero angle.
    pub const ZERO: Self = Self(0.0);
    /// π radians.
    pub const PI: Self = Self(std::f32::consts::PI);

    /// Creates an angle from raw radians.
    #[inline]
    pub const fn new(radians: f32) -> Self {
        Self(radians)
    }

    /// Creates an angle from degrees.
    #[inline]
    pub fn from_degrees(deg: f32) -> Self {
        Self(deg.to_radians())
    }

    /// Creates an angle expressed as a multiple of π, the notation the
    /// paper uses for thresholds (e.g. `0.01π`).
    #[inline]
    pub fn from_pi_fraction(fraction: f32) -> Self {
        Self(fraction * std::f32::consts::PI)
    }

    /// Raw radians value.
    #[inline]
    pub const fn as_f32(self) -> f32 {
        self.0
    }

    /// Value in degrees.
    #[inline]
    pub fn to_degrees(self) -> f32 {
        self.0.to_degrees()
    }

    /// Absolute angular difference, folded into `[0, π]`.
    ///
    /// Two camera angles that differ by `2π` describe the same viewing
    /// direction, so the difference is computed on the circle.
    #[inline]
    pub fn abs_diff(self, rhs: Self) -> Self {
        let two_pi = 2.0 * std::f32::consts::PI;
        let mut d = (self.0 - rhs.0).rem_euclid(two_pi);
        if d > std::f32::consts::PI {
            d = two_pi - d;
        }
        Self(d)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl Add for Radians {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Radians {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Display for Radians {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} rad ({:.2}°)", self.0, self.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_radian_equivalence() {
        // The paper's default threshold: 1.8° == 0.01π rad.
        let a = Radians::from_degrees(1.8);
        let b = Radians::from_pi_fraction(0.01);
        assert!((a.as_f32() - b.as_f32()).abs() < 1e-5);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Radians::new(0.3);
        let b = Radians::new(1.1);
        assert!((a.abs_diff(b).as_f32() - b.abs_diff(a).as_f32()).abs() < 1e-6);
        assert!((a.abs_diff(b).as_f32() - 0.8).abs() < 1e-5);
    }

    #[test]
    fn abs_diff_wraps_around_circle() {
        let a = Radians::new(0.1);
        let b = Radians::new(2.0 * std::f32::consts::PI - 0.1);
        assert!((a.abs_diff(b).as_f32() - 0.2).abs() < 1e-5);
    }

    #[test]
    fn abs_diff_never_exceeds_pi() {
        for i in 0..100 {
            let a = Radians::new(i as f32 * 0.37);
            let b = Radians::new(i as f32 * -0.53);
            assert!(a.abs_diff(b).as_f32() <= std::f32::consts::PI + 1e-5);
            assert!(a.abs_diff(b).as_f32() >= 0.0);
        }
    }

    #[test]
    fn display_contains_both_units() {
        let s = format!("{}", Radians::from_degrees(90.0));
        assert!(s.contains("rad"));
        assert!(s.contains("90.00°"));
    }
}
