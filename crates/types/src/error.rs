//! Common error type for simulator configuration.

use std::error::Error;
use std::fmt;

/// Convenience alias for results carrying a [`ConfigError`].
pub type Result<T> = std::result::Result<T, ConfigError>;

/// Error produced when a simulator component is constructed with an
/// invalid configuration.
///
/// # Examples
///
/// ```
/// use pimgfx_types::ConfigError;
/// let err = ConfigError::new("texture cache", "associativity must be a power of two");
/// assert_eq!(
///     err.to_string(),
///     "invalid texture cache configuration: associativity must be a power of two"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the offending `component` and the `reason`
    /// the configuration was rejected.
    pub fn new(component: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            component: component.into(),
            reason: reason.into(),
        }
    }

    /// The component that rejected its configuration.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Why the configuration was rejected.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} configuration: {}",
            self.component, self.reason
        )
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let e = ConfigError::new("hmc", "vault count must divide bank count");
        assert_eq!(e.component(), "hmc");
        assert_eq!(e.reason(), "vault count must divide bank count");
        assert!(e.to_string().starts_with("invalid hmc configuration"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
