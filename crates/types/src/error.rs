//! Common error types for simulator configuration and tooling.

use std::fmt;

/// Convenience alias for results carrying a [`ConfigError`].
pub type Result<T> = std::result::Result<T, ConfigError>;

/// Error produced when a simulator component is constructed with an
/// invalid configuration.
///
/// # Examples
///
/// ```
/// use pimgfx_types::ConfigError;
/// let err = ConfigError::new("texture cache", "associativity must be a power of two");
/// assert_eq!(
///     err.to_string(),
///     "invalid texture cache configuration: associativity must be a power of two"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the offending `component` and the `reason`
    /// the configuration was rejected.
    pub fn new(component: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            component: component.into(),
            reason: reason.into(),
        }
    }

    /// The component that rejected its configuration.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Why the configuration was rejected.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} configuration: {}",
            self.component, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// Unified error for fallible simulator and harness paths.
///
/// Library code never panics (enforced by the `no-panic` rule of
/// `cargo xtask lint`); anything that can fail — configuration
/// validation, rendering, or harness I/O — surfaces through this type.
///
/// # Examples
///
/// ```
/// use pimgfx_types::{ConfigError, Error};
/// let e: Error = ConfigError::new("hmc", "zero vaults").into();
/// assert!(e.to_string().contains("hmc"));
/// ```
#[derive(Debug)]
pub enum Error {
    /// A component rejected its configuration.
    Config(ConfigError),
    /// An I/O operation failed (`context` names the operation).
    Io {
        /// What the harness was doing when the operation failed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl Error {
    /// Wraps an I/O error with a description of the failed operation.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => e.fmt(f),
            Error::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Io { source, .. } => Some(source),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let e = ConfigError::new("hmc", "vault count must divide bank count");
        assert_eq!(e.component(), "hmc");
        assert_eq!(e.reason(), "vault count must divide bank count");
        assert!(e.to_string().starts_with("invalid hmc configuration"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
