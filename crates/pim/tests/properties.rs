//! Property-based tests for the PIM logic-layer hardware invariants.

// Compiled only under `--features proptest-tests` (non-default): the
// workspace carries no external dependencies so that tier-1 CI runs
// fully offline. To run this suite, vendor `proptest` locally, add it
// to this crate's [dev-dependencies], and enable the feature (see
// README "Contributing").
#![cfg(feature = "proptest-tests")]

use pimgfx_engine::Cycle;
use pimgfx_mem::Hmc;
use pimgfx_pim::{
    AtfimConfig, AtfimLogicLayer, ChildConsolidator, MtuBank, MtuConfig, OffloadUnit,
    ParentFetchBatch, ParentTexelBuffer, TextureRequest,
};
use proptest::prelude::*;

fn arb_batch() -> impl Strategy<Value = ParentFetchBatch> {
    (
        prop::collection::vec(0u64..1_000_000, 0..16),
        1u32..=16,
        any::<bool>(),
    )
        .prop_map(|(addrs, ratio, axis)| ParentFetchBatch {
            parent_line_addrs: addrs.into_iter().map(|a| a - a % 64).collect(),
            aniso_ratio: ratio,
            major_axis_x: axis,
            line_bytes: 64,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Consolidation is conservative: it never *adds* fetches, its
    /// output is duplicate-free, and disabled consolidation is the
    /// identity.
    #[test]
    fn consolidation_is_a_dedup(fetches in prop::collection::vec(0u64..64, 0..200)) {
        let mut on = ChildConsolidator::new(true);
        let out = on.consolidate(fetches.clone());
        prop_assert!(out.len() <= fetches.len());
        let set: std::collections::HashSet<_> = out.iter().collect();
        prop_assert_eq!(set.len(), out.len(), "duplicates survived");
        prop_assert_eq!(out.len() as u64 + on.merged(), fetches.len() as u64);

        let mut off = ChildConsolidator::new(false);
        prop_assert_eq!(off.consolidate(fetches.clone()), fetches);
    }

    /// The parent buffer never over-allocates and its free+occupied
    /// total is invariant.
    #[test]
    fn parent_buffer_conserves_entries(
        ops in prop::collection::vec((0usize..20, any::<bool>()), 1..100),
    ) {
        let mut buf = ParentTexelBuffer::new(16);
        for (n, alloc) in ops {
            if alloc {
                let granted = buf.try_allocate(n);
                prop_assert!(granted <= n);
                prop_assert!(granted <= 16);
            } else {
                let release = n.min(buf.occupied());
                buf.release(release);
            }
            prop_assert_eq!(buf.free() + buf.occupied(), 16);
            prop_assert!(buf.high_water() >= buf.occupied());
        }
    }

    /// The logic layer's child accounting balances: generated children =
    /// vault reads + merged reads, and completion is causal.
    #[test]
    fn atfim_child_accounting_balances(batch in arb_batch(), arrival in 0u64..10_000) {
        let mut hmc = Hmc::with_defaults();
        let mut logic = AtfimLogicLayer::with_defaults();
        let t = Cycle::new(arrival);
        let resp = logic.process(t, &batch, &mut hmc);
        prop_assert!(resp.completion >= t);
        let expected_children = if batch.parent_line_addrs.is_empty() {
            0
        } else {
            batch.parent_line_addrs.len() as u64 * u64::from(batch.aniso_ratio.max(1))
        };
        prop_assert_eq!(resp.child_reads + resp.merged_reads, expected_children);
    }

    /// Offload package bytes: compressed packages have a fixed size,
    /// uncompressed grow affinely, and both record exactly one package
    /// per nonempty group.
    #[test]
    fn offload_package_accounting(groups in prop::collection::vec(0usize..64, 0..50)) {
        let mut comp = OffloadUnit::new(true);
        let mut raw = OffloadUnit::new(false);
        let mut nonempty = 0u64;
        for n in groups {
            let addrs = vec![0u64; n];
            let cb = comp.package_bytes(&addrs);
            let rb = raw.package_bytes(&addrs);
            if n == 0 {
                prop_assert_eq!(cb, 0);
                prop_assert_eq!(rb, 0);
            } else {
                nonempty += 1;
                prop_assert_eq!(cb, 64);
                prop_assert_eq!(rb, 16 + 8 * n as u64);
            }
        }
        prop_assert_eq!(comp.packages(), nonempty);
        prop_assert_eq!(raw.packages(), nonempty);
    }

    /// MTU completions are causal and per-MTU monotone under any
    /// request stream.
    #[test]
    fn mtu_completions_are_causal(
        reqs in prop::collection::vec((0usize..4, 0u64..1000, 1usize..8, 1u32..64), 1..40),
    ) {
        let mut hmc = Hmc::with_defaults();
        let mut bank = MtuBank::new(4, MtuConfig::default());
        let mut last_per_mtu = [Cycle::ZERO; 4];
        for (mtu, arrival, lines, texels) in reqs {
            let req = TextureRequest {
                texel_line_addrs: (0..lines as u64).map(|i| i * 64).collect(),
                texel_count: texels,
                line_bytes: 64,
            };
            let t = Cycle::new(arrival);
            let done = bank.process(mtu, t, &req, &mut hmc);
            prop_assert!(done > t, "completion before arrival");
            prop_assert!(done >= last_per_mtu[mtu], "per-MTU order violated");
            last_per_mtu[mtu] = done;
        }
    }

    /// Higher anisotropy ratios never make the logic layer finish a
    /// batch earlier (more children, never fewer).
    #[test]
    fn more_children_never_finish_earlier(
        parents in prop::collection::vec(0u64..100_000, 1..8),
    ) {
        let parents: Vec<u64> = parents.into_iter().map(|a| a - a % 64).collect();
        let mk = |ratio: u32| -> Cycle {
            let mut hmc = Hmc::with_defaults();
            let mut logic = AtfimLogicLayer::new(AtfimConfig::default());
            logic
                .process(
                    Cycle::ZERO,
                    &ParentFetchBatch {
                        parent_line_addrs: parents.clone(),
                        aniso_ratio: ratio,
                        major_axis_x: true,
                        line_bytes: 64,
                    },
                    &mut hmc,
                )
                .completion
        };
        prop_assert!(mk(16) >= mk(2));
    }
}
