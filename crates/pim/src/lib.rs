//! Processing-in-memory hardware for the `pim-render` GPU simulator.
//!
//! Two designs from the paper live here:
//!
//! * **S-TFIM** (§IV) — [`MtuBank`]: every texture unit of the host GPU is
//!   moved wholesale into the HMC logic layer as a *Memory Texture Unit*
//!   with a request queue and FIFO scheduler. Texel reads become internal
//!   vault accesses, but every texture request and its response must
//!   cross the external links as oversized packages, and the GPU loses
//!   its texture caches — which is why the paper measures S-TFIM
//!   *increasing* texture traffic by ~2.8×.
//!
//! * **A-TFIM** (§V) — [`AtfimLogicLayer`]: only the anisotropic phase
//!   runs in memory, reordered ahead of bilinear/trilinear. The GPU
//!   fetches 8 *parent texels* per sample; on a texture-cache miss the
//!   [`OffloadUnit`] packs the misses into a compressed package, the
//!   [`TexelGenerator`] expands each parent into its child texels, the
//!   [`ChildConsolidator`] merges duplicate child reads, the
//!   [`ParentTexelBuffer`] holds in-flight state, and the
//!   [`CombinationUnit`] averages children into approximated parents sent
//!   back to the GPU.
//!
//! # Examples
//!
//! ```
//! use pimgfx_engine::Cycle;
//! use pimgfx_mem::Hmc;
//! use pimgfx_pim::{AtfimLogicLayer, ParentFetchBatch};
//!
//! let mut hmc = Hmc::with_defaults();
//! let mut logic = AtfimLogicLayer::with_defaults();
//! let batch = ParentFetchBatch {
//!     parent_line_addrs: vec![0x0, 0x40, 0x1000, 0x1040],
//!     aniso_ratio: 4,
//!     major_axis_x: true,
//!     line_bytes: 64,
//! };
//! let resp = logic.process(Cycle::ZERO, &batch, &mut hmc);
//! assert!(resp.completion > Cycle::ZERO);
//! assert!(resp.child_reads >= 4, "each parent expands into children");
//! ```

// --- lint wall (checked byte-for-byte by `cargo xtask lint`) ---
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)]

pub mod atfim;
pub mod consolidate;
pub mod mtu;
pub mod offload;
pub mod parent_buffer;

pub use atfim::{AtfimConfig, AtfimLogicLayer, AtfimResponse, ParentFetchBatch};
pub use consolidate::ChildConsolidator;
pub use mtu::{Mtu, MtuBank, MtuConfig, TextureRequest};
pub use offload::OffloadUnit;
pub use parent_buffer::ParentTexelBuffer;

/// Re-exported combination back end (lives in [`atfim`]).
pub use atfim::CombinationUnit;
/// Re-exported child-texel generation front end (lives in [`atfim`]).
pub use atfim::TexelGenerator;
