//! The Child Texel Consolidation unit.
//!
//! Merges identical child-texel fetches generated for different parent
//! texels before they reach the vaults (§V-D of the paper: "merges the
//! identical child texel fetches to reduce memory contention"). Because
//! neighboring parents expand into overlapping runs of children along
//! the anisotropy axis, the merge rate is substantial — it is one of the
//! ablations DESIGN.md calls out.

use pimgfx_types::fxhash::{FxBuildHasher, FxHashSet};

/// Deduplicates child-texel line addresses within one offload package.
///
/// # Examples
///
/// ```
/// use pimgfx_pim::ChildConsolidator;
/// let mut c = ChildConsolidator::new(true);
/// let unique = c.consolidate(vec![0x40, 0x40, 0x80, 0x40]);
/// assert_eq!(unique, vec![0x40, 0x80]);
/// assert_eq!(c.merged(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ChildConsolidator {
    enabled: bool,
    seen_total: u64,
    merged: u64,
}

impl ChildConsolidator {
    /// Creates a consolidator; `enabled = false` passes fetches through
    /// unmerged (the ablation baseline).
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            seen_total: 0,
            merged: 0,
        }
    }

    /// True when merging is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Merges duplicate line addresses, preserving first-seen order.
    pub fn consolidate(&mut self, fetches: Vec<u64>) -> Vec<u64> {
        self.seen_total += fetches.len() as u64;
        if !self.enabled {
            return fetches;
        }
        let mut seen = FxHashSet::with_capacity_and_hasher(fetches.len(), FxBuildHasher::default());
        let mut out = Vec::with_capacity(fetches.len());
        for f in fetches {
            if seen.insert(f) {
                out.push(f);
            } else {
                self.merged += 1;
            }
        }
        out
    }

    /// Total child fetches presented.
    pub fn seen(&self) -> u64 {
        self.seen_total
    }

    /// Fetches eliminated by merging.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Fraction of fetches merged away (0 when nothing seen).
    pub fn merge_rate(&self) -> f64 {
        if self.seen_total == 0 {
            0.0
        } else {
            self.merged as f64 / self.seen_total as f64
        }
    }

    /// Clears statistics.
    pub fn reset(&mut self) {
        self.seen_total = 0;
        self.merged = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_duplicates_preserving_order() {
        let mut c = ChildConsolidator::new(true);
        let out = c.consolidate(vec![3, 1, 3, 2, 1, 3]);
        assert_eq!(out, vec![3, 1, 2]);
        assert_eq!(c.merged(), 3);
        assert_eq!(c.seen(), 6);
        assert!((c.merge_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_consolidator_passes_through() {
        let mut c = ChildConsolidator::new(false);
        let input = vec![5, 5, 5];
        let out = c.consolidate(input.clone());
        assert_eq!(out, input);
        assert_eq!(c.merged(), 0);
        assert_eq!(c.seen(), 3);
    }

    #[test]
    fn empty_input() {
        let mut c = ChildConsolidator::new(true);
        assert!(c.consolidate(Vec::new()).is_empty());
        assert_eq!(c.merge_rate(), 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut c = ChildConsolidator::new(true);
        c.consolidate(vec![1, 1]);
        c.reset();
        assert_eq!(c.seen(), 0);
        assert_eq!(c.merged(), 0);
    }
}
