//! The GPU-side Offloading Unit of A-TFIM.
//!
//! On a texture-cache miss the Offloading Unit packs the missing parent
//! texels into a package for the HMC. A hash table pairs every parent
//! texel with its byte offset to the *first* parent's address, so the
//! package carries one full address plus small offsets instead of N full
//! addresses — keeping the package at the paper's 4×-read-request size
//! even for an 8-parent fetch (§V-D).

use pimgfx_mem::packet;

/// Packs parent-texel misses into offload packages and accounts their
/// bytes.
///
/// # Examples
///
/// ```
/// use pimgfx_pim::OffloadUnit;
/// let mut u = OffloadUnit::new(true);
/// let bytes = u.package_bytes(&[0x1000, 0x1040, 0x1080]);
/// assert_eq!(bytes, 64, "compressed package = 4x read request");
/// ```
#[derive(Debug, Clone)]
pub struct OffloadUnit {
    compress: bool,
    packages: u64,
    bytes_sent: u64,
}

impl OffloadUnit {
    /// Creates the unit; `compress = false` disables the offset hash
    /// table (ablation) so every parent address ships in full.
    pub fn new(compress: bool) -> Self {
        Self {
            compress,
            packages: 0,
            bytes_sent: 0,
        }
    }

    /// True when offset compression is active.
    pub fn is_compressing(&self) -> bool {
        self.compress
    }

    /// Bytes of the offload package for a group of parent line
    /// addresses, and records the package.
    ///
    /// Compressed: one fixed-size package (header + base address + the
    /// offset hash table) per group — the paper's 4× read-request model,
    /// independent of how many parents it carries.
    /// Uncompressed: a command header plus a full 8-byte address per
    /// parent, so large groups grow linearly.
    pub fn package_bytes(&mut self, parent_addrs: &[u64]) -> u64 {
        if parent_addrs.is_empty() {
            return 0;
        }
        self.packages += 1;
        let bytes = if self.compress {
            packet::ATFIM_PARENT_PACKAGE_BYTES
        } else {
            packet::READ_REQUEST_BYTES + 8 * parent_addrs.len() as u64
        };
        self.bytes_sent += bytes;
        bytes
    }

    /// Bytes of the response carrying the approximated parent texels:
    /// formatted as a normal bilinear fetch result (§V-D, "the output
    /// package has the same format as a normal bilinear fetch").
    pub fn response_bytes(&self, parent_count: usize) -> u64 {
        if parent_count == 0 {
            return 0;
        }
        packet::RESPONSE_HEADER_BYTES
            + (parent_count as u64 * packet::TEXEL_BYTES).max(packet::CACHE_LINE_BYTES.min(64))
    }

    /// Packages sent so far.
    pub fn packages(&self) -> u64 {
        self.packages
    }

    /// Total request-direction bytes.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Clears statistics.
    pub fn reset(&mut self) {
        self.packages = 0;
        self.bytes_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_package_is_fixed_size() {
        let mut u = OffloadUnit::new(true);
        assert_eq!(u.package_bytes(&[0x0]), 64);
        assert_eq!(u.package_bytes(&[0x0; 8]), 64);
        assert_eq!(u.packages(), 2);
        assert_eq!(u.bytes_sent(), 128);
    }

    #[test]
    fn uncompressed_scales_with_parents() {
        let mut u = OffloadUnit::new(false);
        assert_eq!(u.package_bytes(&[0x0; 8]), 16 + 8 * 8);
        // The fixed compressed package wins once the group is large: a
        // 32-parent quad batch costs 64 B compressed vs 272 B raw.
        let mut c = OffloadUnit::new(true);
        assert!(c.package_bytes(&[0x0; 32]) < u.package_bytes(&[0x0; 32]));
        // Tiny groups are cheaper raw — compression is a win on the
        // anisotropy-heavy content it was designed for, not universally.
        let mut c2 = OffloadUnit::new(true);
        let mut u2 = OffloadUnit::new(false);
        assert!(c2.package_bytes(&[0x0]) > u2.package_bytes(&[0x0]));
    }

    #[test]
    fn empty_group_costs_nothing() {
        let mut u = OffloadUnit::new(true);
        assert_eq!(u.package_bytes(&[]), 0);
        assert_eq!(u.packages(), 0);
    }

    #[test]
    fn response_is_header_plus_texels() {
        let u = OffloadUnit::new(true);
        assert_eq!(u.response_bytes(0), 0);
        let r8 = u.response_bytes(8);
        assert!(r8 >= packet::RESPONSE_HEADER_BYTES + 32);
    }

    #[test]
    fn reset_clears() {
        let mut u = OffloadUnit::new(true);
        u.package_bytes(&[1, 2]);
        u.reset();
        assert_eq!(u.packages(), 0);
        assert_eq!(u.bytes_sent(), 0);
    }
}
