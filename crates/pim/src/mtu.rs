//! S-TFIM Memory Texture Units.
//!
//! S-TFIM moves every texture unit of the host GPU into the HMC logic
//! layer. Each cluster keeps a private MTU; a texture request travels as
//! a package over the TX link into the MTU's request queue, a FIFO
//! scheduler feeds the pipeline one request per cycle, texel reads go
//! straight to the vaults (no texture caches exist anywhere in this
//! design), and the filtered texture returns over the RX link. When the
//! queue fills, the MTU asserts a stall back to its shader cluster.

use pimgfx_engine::trace::{stage, StageCounters, StageTrace};
use pimgfx_engine::{Cycle, Duration, Server};
use pimgfx_mem::{Hmc, MemRequest, MemorySystem, TrafficClass};

/// MTU configuration, mirroring the GPU texture unit of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtuConfig {
    /// Request-queue depth per MTU.
    pub queue_depth: usize,
    /// Address-generation ALUs (4 in Table I).
    pub addr_alus: u32,
    /// Filtering ALUs (8 in Table I).
    pub filter_alus: u32,
    /// Pipeline latency of the filtering datapath, cycles.
    pub pipeline_latency: u64,
}

impl Default for MtuConfig {
    fn default() -> Self {
        Self {
            queue_depth: 256,
            addr_alus: 4,
            filter_alus: 8,
            pipeline_latency: 8,
        }
    }
}

/// One texture-filtering request as seen by an MTU.
#[derive(Debug, Clone)]
pub struct TextureRequest {
    /// Cache-line addresses of every texel line the filter needs.
    pub texel_line_addrs: Vec<u64>,
    /// Total texels to filter (drives ALU occupancy).
    pub texel_count: u32,
    /// Bytes read per texel line (64 raw; 16 under 4:1 block
    /// compression).
    pub line_bytes: u32,
}

/// A single Memory Texture Unit in the logic layer.
#[derive(Debug)]
pub struct Mtu {
    config: MtuConfig,
    addr_pipe: Server,
    filter_pipe: Server,
    /// Completion times of requests still logically "in the queue".
    inflight: std::collections::VecDeque<Cycle>,
    stalls: u64,
    requests: u64,
}

impl Mtu {
    /// Creates an MTU.
    pub fn new(config: MtuConfig) -> Self {
        Self {
            // trace:stage(pim.mtu.addr)
            addr_pipe: Server::new(1, 1),
            // trace:stage(pim.mtu.filter)
            filter_pipe: Server::new(1, config.pipeline_latency),
            inflight: std::collections::VecDeque::new(),
            stalls: 0,
            requests: 0,
            config,
        }
    }

    /// Services one texture request arriving (at the logic layer) at
    /// `arrival`; texel reads are issued to `hmc` internally. Returns the
    /// cycle the filtered texture is ready to leave the logic layer.
    pub fn process(&mut self, arrival: Cycle, req: &TextureRequest, hmc: &mut Hmc) -> Cycle {
        self.requests += 1;
        // Queue admission: drop completed entries, stall if still full.
        while let Some(&front) = self.inflight.front() {
            if front <= arrival {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        let mut start = arrival;
        if self.inflight.len() >= self.config.queue_depth {
            // Stall until the oldest in-flight request retires.
            self.stalls += 1;
            if let Some(&oldest) = self.inflight.front() {
                start = oldest;
            }
        }

        // Address generation: texel_count addresses over addr_alus lanes.
        let addr_slots =
            u64::from(req.texel_count).div_ceil(u64::from(self.config.addr_alus.max(1)));
        let addr_done = self.addr_pipe.issue_weighted(start, addr_slots.max(1));

        // Texel reads: every line is an internal vault access; the MTU
        // has no cache, so nothing is ever filtered out of this stream.
        let mut data_ready = addr_done;
        for &line in &req.texel_line_addrs {
            let r = MemRequest::read(TrafficClass::TextureFetch, line, req.line_bytes.max(1));
            data_ready = data_ready.max(hmc.access_internal(addr_done, &r));
        }

        // Filtering: texel_count multiply-accumulates over filter_alus.
        let filter_slots =
            u64::from(req.texel_count).div_ceil(u64::from(self.config.filter_alus.max(1)));
        let done = self
            .filter_pipe
            .issue_weighted(data_ready, filter_slots.max(1));
        self.inflight.push_back(done);
        done
    }

    /// `(requests, stalls)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.requests, self.stalls)
    }

    /// Busy cycles of the filtering datapath (for energy).
    pub fn filter_busy(&self) -> Duration {
        self.filter_pipe.utilization().busy()
    }

    /// Busy cycles of the address-generation pipe (trace-only; the
    /// energy model's `pim_busy` deliberately covers the filtering
    /// datapath alone, see `docs/OBSERVABILITY.md`).
    pub fn addr_busy(&self) -> Duration {
        self.addr_pipe.utilization().busy()
    }

    /// Resets timing state.
    pub fn reset(&mut self) {
        self.addr_pipe.reset();
        self.filter_pipe.reset();
        self.inflight.clear();
        self.stalls = 0;
        self.requests = 0;
    }
}

/// The bank of per-cluster MTUs (16 in the paper's configuration, one
/// per shader cluster so S-TFIM matches the baseline's compute capacity).
///
/// # Examples
///
/// ```
/// use pimgfx_engine::Cycle;
/// use pimgfx_mem::Hmc;
/// use pimgfx_pim::{MtuBank, MtuConfig, TextureRequest};
///
/// let mut hmc = Hmc::with_defaults();
/// let mut bank = MtuBank::new(16, MtuConfig::default());
/// let req = TextureRequest { texel_line_addrs: vec![0, 64], texel_count: 8, line_bytes: 64 };
/// let done = bank.process(0, Cycle::ZERO, &req, &mut hmc);
/// assert!(done > Cycle::ZERO);
/// ```
#[derive(Debug)]
pub struct MtuBank {
    mtus: Vec<Mtu>,
}

impl MtuBank {
    /// Creates `n` MTUs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, config: MtuConfig) -> Self {
        assert!(n > 0, "need at least one MTU");
        Self {
            mtus: (0..n).map(|_| Mtu::new(config)).collect(),
        }
    }

    /// Number of MTUs.
    pub fn len(&self) -> usize {
        self.mtus.len()
    }

    /// True when the bank is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.mtus.is_empty()
    }

    /// Routes a request to the cluster-private MTU.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn process(
        &mut self,
        cluster: usize,
        arrival: Cycle,
        req: &TextureRequest,
        hmc: &mut Hmc,
    ) -> Cycle {
        self.mtus[cluster].process(arrival, req, hmc)
    }

    /// Aggregate `(requests, stalls)` across MTUs.
    pub fn stats(&self) -> (u64, u64) {
        self.mtus.iter().fold((0, 0), |(r, s), m| {
            let (mr, ms) = m.stats();
            (r + mr, s + ms)
        })
    }

    /// Total filtering-datapath busy cycles across MTUs.
    pub fn filter_busy(&self) -> Duration {
        self.mtus.iter().map(Mtu::filter_busy).sum()
    }

    /// Records the MTU stages: `pim.mtu.addr` (informational) and
    /// `pim.mtu.filter`, whose `busy_cycles` equal
    /// [`MtuBank::filter_busy`] and whose `stalls` are the bank's
    /// queue-full stalls.
    pub fn record_trace(&self, trace: &mut StageTrace) {
        for m in &self.mtus {
            trace.record_server(stage::PIM_MTU_ADDR, &m.addr_pipe);
            trace.record_server(stage::PIM_MTU_FILTER, &m.filter_pipe);
        }
        let (_, stalls) = self.stats();
        trace.record(stage::PIM_MTU_FILTER, StageCounters::stalled(stalls));
    }

    /// Resets every MTU.
    pub fn reset(&mut self) {
        for m in &mut self.mtus {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(lines: usize, texels: u32) -> TextureRequest {
        TextureRequest {
            texel_line_addrs: (0..lines as u64).map(|i| i * 64).collect(),
            texel_count: texels,
            line_bytes: 64,
        }
    }

    #[test]
    fn request_flows_through_pipeline() {
        let mut hmc = Hmc::with_defaults();
        let mut mtu = Mtu::new(MtuConfig::default());
        let done = mtu.process(Cycle::ZERO, &req(2, 8), &mut hmc);
        assert!(done > Cycle::ZERO);
        assert_eq!(mtu.stats().0, 1);
        assert_eq!(hmc.traffic().total().get(), 0, "texel reads are internal");
        assert!(hmc.internal_bytes() > 0);
    }

    #[test]
    fn bigger_filters_take_longer() {
        let mut hmc1 = Hmc::with_defaults();
        let mut hmc2 = Hmc::with_defaults();
        let mut a = Mtu::new(MtuConfig::default());
        let mut b = Mtu::new(MtuConfig::default());
        let small = a.process(Cycle::ZERO, &req(2, 8), &mut hmc1);
        let large = b.process(Cycle::ZERO, &req(16, 128), &mut hmc2);
        assert!(large > small);
    }

    #[test]
    fn full_queue_stalls() {
        let mut hmc = Hmc::with_defaults();
        let cfg = MtuConfig {
            queue_depth: 2,
            ..MtuConfig::default()
        };
        let mut mtu = Mtu::new(cfg);
        // Three zero-time arrivals into a depth-2 queue.
        mtu.process(Cycle::ZERO, &req(4, 32), &mut hmc);
        mtu.process(Cycle::ZERO, &req(4, 32), &mut hmc);
        mtu.process(Cycle::ZERO, &req(4, 32), &mut hmc);
        assert!(mtu.stats().1 >= 1, "third request stalls");
    }

    #[test]
    fn queue_drains_over_time() {
        let mut hmc = Hmc::with_defaults();
        let cfg = MtuConfig {
            queue_depth: 1,
            ..MtuConfig::default()
        };
        let mut mtu = Mtu::new(cfg);
        let first = mtu.process(Cycle::ZERO, &req(1, 4), &mut hmc);
        // Arrives long after the first completed: no stall.
        mtu.process(
            first + pimgfx_engine::Duration::new(100),
            &req(1, 4),
            &mut hmc,
        );
        assert_eq!(mtu.stats().1, 0);
    }

    #[test]
    fn bank_routes_by_cluster() {
        let mut hmc = Hmc::with_defaults();
        let mut bank = MtuBank::new(4, MtuConfig::default());
        let r = req(1, 4);
        let t0 = bank.process(0, Cycle::ZERO, &r, &mut hmc);
        let t1 = bank.process(1, Cycle::ZERO, &r, &mut hmc);
        // Different MTUs pipeline independently (vault contention aside).
        assert!(t1 <= t0 + pimgfx_engine::Duration::new(64));
        assert_eq!(bank.stats().0, 2);
        assert_eq!(bank.len(), 4);
    }

    #[test]
    fn reset_clears_bank() {
        let mut hmc = Hmc::with_defaults();
        let mut bank = MtuBank::new(2, MtuConfig::default());
        bank.process(0, Cycle::ZERO, &req(1, 4), &mut hmc);
        bank.reset();
        assert_eq!(bank.stats(), (0, 0));
        assert_eq!(bank.filter_busy(), pimgfx_engine::Duration::ZERO);
    }

    #[test]
    fn trace_conserves_filter_busy_and_stalls() {
        let mut hmc = Hmc::with_defaults();
        let cfg = MtuConfig {
            queue_depth: 1,
            ..MtuConfig::default()
        };
        let mut bank = MtuBank::new(2, cfg);
        for _ in 0..3 {
            bank.process(0, Cycle::ZERO, &req(4, 32), &mut hmc);
            bank.process(1, Cycle::ZERO, &req(4, 32), &mut hmc);
        }
        let mut t = StageTrace::new();
        bank.record_trace(&mut t);
        assert_eq!(
            t.counters(stage::PIM_MTU_FILTER).busy_cycles,
            bank.filter_busy().get()
        );
        assert_eq!(t.counters(stage::PIM_MTU_FILTER).stalls, bank.stats().1);
        assert!(t.counters(stage::PIM_MTU_ADDR).busy_cycles > 0);
    }
}
