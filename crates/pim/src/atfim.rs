//! The A-TFIM logic-layer pipeline: Texel Generator → Child Texel
//! Consolidation → vault reads → Combination Unit.

use crate::consolidate::ChildConsolidator;
use crate::parent_buffer::ParentTexelBuffer;
use pimgfx_engine::trace::{stage, StageCounters, StageTrace};
use pimgfx_engine::{Cycle, Duration, Server};
use pimgfx_mem::{Hmc, MemRequest, MemorySystem, TrafficClass};

/// A-TFIM logic-layer configuration (§V-D / Table I: 16 texel-address
/// ALUs in the Texel Generator, 16 filtering ALUs in the Combination
/// Unit, a 256-entry Parent Texel Buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtfimConfig {
    /// Address ALUs in the Texel Generator.
    pub generator_alus: u32,
    /// Filtering ALUs in the Combination Unit.
    pub combine_alus: u32,
    /// Parent Texel Buffer entries.
    pub parent_buffer_entries: usize,
    /// Enable child-texel consolidation (ablation knob).
    pub consolidate: bool,
    /// Pipeline latency of each logic-layer stage, cycles.
    pub stage_latency: u64,
}

impl Default for AtfimConfig {
    fn default() -> Self {
        Self {
            generator_alus: 16,
            combine_alus: 16,
            parent_buffer_entries: ParentTexelBuffer::DEFAULT_ENTRIES,
            consolidate: true,
            stage_latency: 4,
        }
    }
}

/// One parent-texel miss group offloaded by a texture unit.
#[derive(Debug, Clone)]
pub struct ParentFetchBatch {
    /// Cache-line addresses of the missing parent texels.
    pub parent_line_addrs: Vec<u64>,
    /// Anisotropy ratio: children generated per parent.
    pub aniso_ratio: u32,
    /// Whether the anisotropy major axis is closer to the texture's x
    /// axis (children then stride along adjacent blocks in x) or y.
    pub major_axis_x: bool,
    /// Bytes read per texel line (64 raw; 16 under 4:1 block
    /// compression).
    pub line_bytes: u32,
}

/// What the logic layer reports back per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtfimResponse {
    /// Cycle the approximated parent texels are ready to leave the cube.
    pub completion: Cycle,
    /// Child texel line reads actually issued to the vaults.
    pub child_reads: u64,
    /// Child reads eliminated by consolidation.
    pub merged_reads: u64,
}

/// The child-texel generation front end (16 address ALUs).
#[derive(Debug)]
pub struct TexelGenerator {
    pipe: Server,
    alus: u32,
    generated: u64,
}

impl TexelGenerator {
    /// Creates the generator.
    pub fn new(alus: u32, stage_latency: u64) -> Self {
        Self {
            // trace:stage(pim.atfim.generate)
            pipe: Server::new(1, stage_latency),
            alus: alus.max(1),
            generated: 0,
        }
    }

    /// Generates child addresses for a batch: each parent expands into
    /// `ratio` children strided along the major axis in units of one
    /// tiling block (64-byte line). Returns `(ready_time, child_lines)`.
    pub fn generate(&mut self, arrival: Cycle, batch: &ParentFetchBatch) -> (Cycle, Vec<u64>) {
        let ratio = u64::from(batch.aniso_ratio.max(1));
        let mut children = Vec::with_capacity(batch.parent_line_addrs.len() * ratio as usize);
        // Stride between successive children, in bytes of the block-tiled
        // layout: probes step 1–2 texels along the anisotropy line, and a
        // 64-byte block holds a 4×4 texel tile, so roughly four probes
        // share a line along x (16 B per probe) and four along y (one
        // quarter of a block row, approximated for a 16-block-wide
        // level). Line-aligning below then folds same-block children
        // together; consolidation removes the duplicates.
        let stride: u64 = if batch.major_axis_x { 16 } else { 64 * 16 / 4 };
        for &p in &batch.parent_line_addrs {
            let half = ratio / 2;
            for k in 0..ratio {
                let off = k as i64 - half as i64;
                let addr = if off.is_negative() {
                    p.saturating_sub(stride * off.unsigned_abs())
                } else {
                    p + stride * off as u64
                };
                children.push(addr - addr % 64);
            }
        }
        self.generated += children.len() as u64;
        let slots = (children.len() as u64)
            .div_ceil(u64::from(self.alus))
            .max(1);
        let ready = self.pipe.issue_weighted(arrival, slots);
        (ready, children)
    }

    /// Child addresses generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Busy cycles (energy).
    pub fn busy(&self) -> Duration {
        self.pipe.utilization().busy()
    }

    /// Resets timing state.
    pub fn reset(&mut self) {
        self.pipe.reset();
        self.generated = 0;
    }
}

/// The combination back end (16 filtering ALUs) that averages fetched
/// children into approximated parent texels.
#[derive(Debug)]
pub struct CombinationUnit {
    pipe: Server,
    alus: u32,
    combined: u64,
}

impl CombinationUnit {
    /// Creates the unit.
    pub fn new(alus: u32, stage_latency: u64) -> Self {
        Self {
            // trace:stage(pim.atfim.combine)
            pipe: Server::new(1, stage_latency),
            alus: alus.max(1),
            combined: 0,
        }
    }

    /// Accumulates `child_count` texels into `parent_count` parents;
    /// returns when the parents are fully combined.
    pub fn combine(&mut self, arrival: Cycle, child_count: u64, parent_count: u64) -> Cycle {
        self.combined += parent_count;
        let slots = child_count.div_ceil(u64::from(self.alus)).max(1);
        self.pipe.issue_weighted(arrival, slots)
    }

    /// Parents combined so far.
    pub fn combined(&self) -> u64 {
        self.combined
    }

    /// Busy cycles (energy).
    pub fn busy(&self) -> Duration {
        self.pipe.utilization().busy()
    }

    /// Resets timing state.
    pub fn reset(&mut self) {
        self.pipe.reset();
        self.combined = 0;
    }
}

/// The assembled A-TFIM logic layer.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct AtfimLogicLayer {
    config: AtfimConfig,
    generator: TexelGenerator,
    consolidator: ChildConsolidator,
    parent_buffer: ParentTexelBuffer,
    combiner: CombinationUnit,
    batches: u64,
}

impl AtfimLogicLayer {
    /// Builds the logic layer from a configuration.
    pub fn new(config: AtfimConfig) -> Self {
        Self {
            generator: TexelGenerator::new(config.generator_alus, config.stage_latency),
            consolidator: ChildConsolidator::new(config.consolidate),
            parent_buffer: ParentTexelBuffer::new(config.parent_buffer_entries.max(1)),
            combiner: CombinationUnit::new(config.combine_alus, config.stage_latency),
            config,
            batches: 0,
        }
    }

    /// Builds the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(AtfimConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &AtfimConfig {
        &self.config
    }

    /// Processes one offloaded parent-fetch batch end to end against the
    /// vaults of `hmc`.
    pub fn process(
        &mut self,
        arrival: Cycle,
        batch: &ParentFetchBatch,
        hmc: &mut Hmc,
    ) -> AtfimResponse {
        self.batches += 1;
        let parents = batch.parent_line_addrs.len();
        if parents == 0 {
            return AtfimResponse {
                completion: arrival,
                child_reads: 0,
                merged_reads: 0,
            };
        }

        // Reserve parent-buffer entries; a full buffer delays the batch
        // by one drain epoch (approximated as one stage latency per
        // missing entry batch).
        let granted = self.parent_buffer.try_allocate(parents);
        let stall = if granted < parents {
            Duration::new(self.config.stage_latency)
        } else {
            Duration::ZERO
        };

        // 1. Texel Generator.
        let (gen_done, children) = self.generator.generate(arrival + stall, batch);

        // 2. Child Texel Consolidation.
        let before = children.len() as u64;
        let unique = self.consolidator.consolidate(children);
        let merged = before - unique.len() as u64;

        // 3. Vault reads (internal — never on the external links).
        let mut data_ready = gen_done;
        for &line in &unique {
            let r = MemRequest::read(TrafficClass::TextureFetch, line, batch.line_bytes.max(1));
            data_ready = data_ready.max(hmc.access_internal(gen_done, &r));
        }

        // 4. Combination Unit.
        let completion = self.combiner.combine(data_ready, before, parents as u64);

        // Retire buffer entries.
        self.parent_buffer.release(granted);

        AtfimResponse {
            completion,
            child_reads: unique.len() as u64,
            merged_reads: merged,
        }
    }

    /// Batches processed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// The consolidator (merge statistics).
    pub fn consolidator(&self) -> &ChildConsolidator {
        &self.consolidator
    }

    /// The parent buffer (occupancy statistics).
    pub fn parent_buffer(&self) -> &ParentTexelBuffer {
        &self.parent_buffer
    }

    /// Combined busy cycles of the generator and combiner (energy).
    pub fn compute_busy(&self) -> Duration {
        self.generator.busy() + self.combiner.busy()
    }

    /// Records the A-TFIM stages: generator and combiner busy cycles
    /// (summing to [`AtfimLogicLayer::compute_busy`]) plus the Parent
    /// Texel Buffer's backpressure stalls under `pim.atfim.buffer`.
    pub fn record_trace(&self, trace: &mut StageTrace) {
        trace.record(
            stage::PIM_ATFIM_GENERATE,
            StageCounters::busy(self.generator.busy().get()).with_ops(self.generator.generated()),
        );
        trace.record(
            stage::PIM_ATFIM_COMBINE,
            StageCounters::busy(self.combiner.busy().get()).with_ops(self.combiner.combined()),
        );
        trace.record(
            stage::PIM_ATFIM_BUFFER,
            StageCounters::stalled(self.parent_buffer.stalls()),
        );
    }

    /// Resets all state.
    pub fn reset(&mut self) {
        self.generator.reset();
        self.consolidator.reset();
        self.parent_buffer.reset();
        self.combiner.reset();
        self.batches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(parents: usize, ratio: u32) -> ParentFetchBatch {
        ParentFetchBatch {
            parent_line_addrs: (0..parents as u64).map(|i| i * 4096).collect(),
            aniso_ratio: ratio,
            major_axis_x: true,
            line_bytes: 64,
        }
    }

    #[test]
    fn children_scale_with_ratio() {
        let mut g = TexelGenerator::new(16, 4);
        let (_, c4) = g.generate(Cycle::ZERO, &batch(8, 4));
        assert_eq!(c4.len(), 32);
        let (_, c16) = g.generate(Cycle::ZERO, &batch(8, 16));
        assert_eq!(c16.len(), 128);
        assert_eq!(g.generated(), 160);
    }

    #[test]
    fn children_are_line_aligned_and_strided() {
        let mut g = TexelGenerator::new(16, 4);
        let b = ParentFetchBatch {
            parent_line_addrs: vec![4096],
            aniso_ratio: 4,
            major_axis_x: true,
            line_bytes: 64,
        };
        let (_, c) = g.generate(Cycle::ZERO, &b);
        assert!(c.iter().all(|a| a % 64 == 0));
        // 4 children at 16-byte steps centered on the parent: offsets
        // -32, -16, 0, +16 bytes, line-aligned => two distinct lines.
        assert_eq!(c, vec![4096 - 64, 4096 - 64, 4096, 4096]);
    }

    #[test]
    fn y_major_uses_row_stride() {
        let mut g = TexelGenerator::new(16, 4);
        let b = ParentFetchBatch {
            parent_line_addrs: vec![1 << 20],
            aniso_ratio: 2,
            major_axis_x: false,
            line_bytes: 64,
        };
        let (_, c) = g.generate(Cycle::ZERO, &b);
        assert_eq!(c[1] - c[0], 64 * 16 / 4);
    }

    #[test]
    fn process_end_to_end() {
        let mut hmc = Hmc::with_defaults();
        let mut logic = AtfimLogicLayer::with_defaults();
        let resp = logic.process(Cycle::ZERO, &batch(8, 4), &mut hmc);
        assert!(resp.completion > Cycle::ZERO);
        assert_eq!(resp.child_reads + resp.merged_reads, 32);
        assert_eq!(hmc.traffic().total().get(), 0, "all reads internal");
        assert!(hmc.internal_bytes() >= resp.child_reads * 64);
    }

    #[test]
    fn consolidation_reduces_reads_for_overlapping_parents() {
        let mut hmc = Hmc::with_defaults();
        let mut logic = AtfimLogicLayer::with_defaults();
        // Adjacent parents one line apart: their child runs overlap.
        let b = ParentFetchBatch {
            parent_line_addrs: vec![4096, 4160, 4224, 4288],
            aniso_ratio: 8,
            major_axis_x: true,
            line_bytes: 64,
        };
        let resp = logic.process(Cycle::ZERO, &b, &mut hmc);
        assert!(resp.merged_reads > 0, "overlap must merge");
        assert!(resp.child_reads < 32);
    }

    #[test]
    fn disabled_consolidation_reads_everything() {
        let mut hmc = Hmc::with_defaults();
        let cfg = AtfimConfig {
            consolidate: false,
            ..AtfimConfig::default()
        };
        let mut logic = AtfimLogicLayer::new(cfg);
        let b = ParentFetchBatch {
            parent_line_addrs: vec![4096, 4160],
            aniso_ratio: 8,
            major_axis_x: true,
            line_bytes: 64,
        };
        let resp = logic.process(Cycle::ZERO, &b, &mut hmc);
        assert_eq!(resp.merged_reads, 0);
        assert_eq!(resp.child_reads, 16);
    }

    #[test]
    fn higher_ratio_takes_longer() {
        let mut h1 = Hmc::with_defaults();
        let mut h2 = Hmc::with_defaults();
        let mut a = AtfimLogicLayer::with_defaults();
        let mut b = AtfimLogicLayer::with_defaults();
        let t4 = a.process(Cycle::ZERO, &batch(8, 4), &mut h1).completion;
        let t16 = b.process(Cycle::ZERO, &batch(8, 16), &mut h2).completion;
        assert!(t16 > t4);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut hmc = Hmc::with_defaults();
        let mut logic = AtfimLogicLayer::with_defaults();
        let resp = logic.process(
            Cycle::new(5),
            &ParentFetchBatch {
                parent_line_addrs: vec![],
                aniso_ratio: 4,
                major_axis_x: true,
                line_bytes: 64,
            },
            &mut hmc,
        );
        assert_eq!(resp.completion, Cycle::new(5));
        assert_eq!(resp.child_reads, 0);
    }

    #[test]
    fn trace_conserves_compute_busy_and_buffer_stalls() {
        let mut hmc = Hmc::with_defaults();
        // A one-entry buffer stalls every multi-parent batch.
        let cfg = AtfimConfig {
            parent_buffer_entries: 1,
            ..AtfimConfig::default()
        };
        let mut logic = AtfimLogicLayer::new(cfg);
        logic.process(Cycle::ZERO, &batch(8, 4), &mut hmc);
        logic.process(Cycle::ZERO, &batch(8, 4), &mut hmc);

        let mut t = StageTrace::new();
        logic.record_trace(&mut t);
        let gen = t.counters(stage::PIM_ATFIM_GENERATE);
        let com = t.counters(stage::PIM_ATFIM_COMBINE);
        assert_eq!(
            gen.busy_cycles + com.busy_cycles,
            logic.compute_busy().get(),
            "stage busy cycles conserve compute_busy"
        );
        assert_eq!(
            t.counters(stage::PIM_ATFIM_BUFFER).stalls,
            logic.parent_buffer().stalls()
        );
        assert!(t.counters(stage::PIM_ATFIM_BUFFER).stalls > 0);
    }

    #[test]
    fn reset_restores_state() {
        let mut hmc = Hmc::with_defaults();
        let mut logic = AtfimLogicLayer::with_defaults();
        logic.process(Cycle::ZERO, &batch(4, 4), &mut hmc);
        logic.reset();
        assert_eq!(logic.batches(), 0);
        assert_eq!(logic.compute_busy(), Duration::ZERO);
        assert_eq!(logic.parent_buffer().occupied(), 0);
    }
}
