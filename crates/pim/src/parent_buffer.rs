//! The Parent Texel Buffer of the A-TFIM logic layer.
//!
//! Holds the in-processing parent-texel state between the Texel Generator
//! and the Combination Unit. The paper sizes it at 256 entries ("equal to
//! the size of the memory request queue to avoid data loss", §V-D); each
//! entry carries a parent ID, a temporary value, a done bit, and a count
//! of unfetched children — 45 bits, 1.41 KB total (§VII-E).

/// Bits per buffer entry (8-bit ID + 32-bit value + 1 done bit + 4-bit
/// child counter), used by the overhead model of §VII-E.
pub const ENTRY_BITS: u32 = 8 + 32 + 1 + 4;

/// Occupancy tracker for the 256-entry parent texel buffer.
///
/// The timing model uses it for backpressure: when the buffer is full,
/// newly arriving parent-texel packages stall until entries retire.
///
/// # Examples
///
/// ```
/// use pimgfx_pim::ParentTexelBuffer;
/// let mut buf = ParentTexelBuffer::new(4);
/// assert_eq!(buf.try_allocate(3), 3);
/// assert_eq!(buf.try_allocate(3), 1, "only one slot left");
/// buf.release(2);
/// assert_eq!(buf.free(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ParentTexelBuffer {
    capacity: usize,
    occupied: usize,
    high_water: usize,
    stalls: u64,
}

impl ParentTexelBuffer {
    /// The paper's buffer depth.
    pub const DEFAULT_ENTRIES: usize = 256;

    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer needs at least one entry");
        Self {
            capacity,
            occupied: 0,
            high_water: 0,
            stalls: 0,
        }
    }

    /// Creates the 256-entry buffer of the paper.
    pub fn with_defaults() -> Self {
        Self::new(Self::DEFAULT_ENTRIES)
    }

    /// Allocates up to `want` entries; returns how many were granted
    /// (possibly zero). A shortfall is recorded as a stall event.
    pub fn try_allocate(&mut self, want: usize) -> usize {
        let granted = want.min(self.capacity - self.occupied);
        if granted < want {
            self.stalls += 1;
        }
        self.occupied += granted;
        self.high_water = self.high_water.max(self.occupied);
        granted
    }

    /// Releases `n` entries back to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more entries are released than are occupied (an
    /// accounting bug in the caller).
    pub fn release(&mut self, n: usize) {
        assert!(
            n <= self.occupied,
            "releasing {n} of {} occupied",
            self.occupied
        );
        self.occupied -= n;
    }

    /// Entries currently free.
    pub fn free(&self) -> usize {
        self.capacity - self.occupied
    }

    /// Entries currently held.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Peak occupancy observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of allocation shortfalls (backpressure events).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Storage overhead in bytes (the §VII-E figure).
    pub fn storage_bytes(&self) -> u64 {
        (self.capacity as u64 * u64::from(ENTRY_BITS)).div_ceil(8)
    }

    /// Empties the buffer and clears statistics.
    pub fn reset(&mut self) {
        self.occupied = 0;
        self.high_water = 0;
        self.stalls = 0;
    }
}

impl Default for ParentTexelBuffer {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_figure() {
        // 256 × 45 bits = 1.41 KB (§VII-E).
        let buf = ParentTexelBuffer::with_defaults();
        assert_eq!(buf.storage_bytes(), 1440);
        assert!((buf.storage_bytes() as f64 / 1024.0 - 1.41).abs() < 0.01);
    }

    #[test]
    fn allocate_release_cycle() {
        let mut b = ParentTexelBuffer::new(8);
        assert_eq!(b.try_allocate(8), 8);
        assert_eq!(b.free(), 0);
        assert_eq!(b.try_allocate(1), 0);
        assert_eq!(b.stalls(), 1);
        b.release(8);
        assert_eq!(b.free(), 8);
        assert_eq!(b.high_water(), 8);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut b = ParentTexelBuffer::new(4);
        b.release(1);
    }

    #[test]
    fn partial_grant_counts_one_stall() {
        let mut b = ParentTexelBuffer::new(4);
        assert_eq!(b.try_allocate(6), 4);
        assert_eq!(b.stalls(), 1);
        assert_eq!(b.occupied(), 4);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = ParentTexelBuffer::new(4);
        b.try_allocate(4);
        b.reset();
        assert_eq!(b.occupied(), 0);
        assert_eq!(b.high_water(), 0);
        assert_eq!(b.stalls(), 0);
    }
}
