//! Property-based tests for the workload generators and trace I/O.

// Compiled only under `--features proptest-tests` (non-default): the
// workspace carries no external dependencies so that tier-1 CI runs
// fully offline. To run this suite, vendor `proptest` locally, add it
// to this crate's [dev-dependencies], and enable the feature (see
// README "Contributing").
#![cfg(feature = "proptest-tests")]

use pimgfx_workloads::{build_scene_unchecked, trace_io, Game, Resolution};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = pimgfx_workloads::GameProfile> {
    (
        prop::sample::select(Game::ALL.to_vec()),
        2u32..6,      // floor_quads
        2u32..6,      // texture_count
        5u32..7,      // log2 texture_size (32..64)
        0u32..3,      // facing props
        1u32..3,      // overdraw layers
        any::<u64>(), // seed
    )
        .prop_map(|(game, quads, textures, log_size, props, layers, seed)| {
            let mut p = game.profile();
            p.floor_quads = quads;
            p.texture_count = textures;
            p.texture_size = 1 << log_size;
            p.facing_props = props;
            p.overdraw_layers = layers;
            p.seed = seed;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scene generation is a pure function of its profile.
    #[test]
    fn scene_generation_is_deterministic(profile in arb_profile()) {
        let a = build_scene_unchecked(&profile, Resolution::R320x240, 1);
        let b = build_scene_unchecked(&profile, Resolution::R320x240, 1);
        prop_assert_eq!(a.triangles_per_frame(), b.triangles_per_frame());
        prop_assert_eq!(a.textures.len(), b.textures.len());
        for (ta, tb) in a.textures.iter().zip(&b.textures) {
            prop_assert_eq!(ta.level(0), tb.level(0));
        }
        for (da, db) in a.draws.iter().zip(&b.draws) {
            prop_assert_eq!(&da.triangles, &db.triangles);
        }
    }

    /// Every generated scene is structurally valid: nonempty draws,
    /// resolvable texture references, unit-ish normals, and one camera
    /// per frame.
    #[test]
    fn scenes_are_structurally_valid(profile in arb_profile(), frames in 1usize..4) {
        let s = build_scene_unchecked(&profile, Resolution::R320x240, frames);
        prop_assert!(!s.draws.is_empty());
        prop_assert_eq!(s.cameras.len(), frames);
        for d in &s.draws {
            prop_assert!(d.texture.index() < s.textures.len());
            for tri in &d.triangles {
                for v in tri {
                    prop_assert!((v.normal.length() - 1.0).abs() < 1e-3);
                    prop_assert!(v.position.length() < 1e4);
                }
            }
        }
    }

    /// Trace serialization round-trips any generated scene exactly.
    #[test]
    fn trace_roundtrip_is_exact(profile in arb_profile()) {
        let scene = build_scene_unchecked(&profile, Resolution::R320x240, 2);
        let mut buf = Vec::new();
        trace_io::save_trace(&scene, &mut buf).expect("serialize");
        let back = trace_io::load_trace(&buf[..]).expect("deserialize");
        prop_assert_eq!(back.game, scene.game);
        prop_assert_eq!(back.shader_alu_ops, scene.shader_alu_ops);
        prop_assert_eq!(back.draws.len(), scene.draws.len());
        for (da, db) in scene.draws.iter().zip(&back.draws) {
            prop_assert_eq!(&da.triangles, &db.triangles);
            prop_assert_eq!(da.texture, db.texture);
        }
        for (ta, tb) in scene.textures.iter().zip(&back.textures) {
            prop_assert_eq!(ta.level(0), tb.level(0));
            prop_assert_eq!(ta.level_count(), tb.level_count());
        }
    }

    /// A truncated trace never parses (no silent partial loads).
    #[test]
    fn truncated_traces_fail(profile in arb_profile(), cut in 5usize..95) {
        let scene = build_scene_unchecked(&profile, Resolution::R320x240, 1);
        let mut buf = Vec::new();
        trace_io::save_trace(&scene, &mut buf).expect("serialize");
        let end = buf.len() * cut / 100;
        prop_assert!(trace_io::load_trace(&buf[..end]).is_err());
    }
}
