//! Procedural synthetic workloads: a seeded, parameterized scene
//! generator plus the first-class [`Workload`] identity shared by the
//! caches, the sweep harness, and the serving plane.
//!
//! The five Table II games cover a tiny, cache-friendly working set.
//! [`SyntheticSpec`] opens the workload axis: triangle budget, texture
//! count/size/kind mix, anisotropy pressure (how much of the budget is
//! spent on grazing-angle surfaces and how level the camera looks),
//! overdraw depth, and an animated multi-frame camera path — all
//! integer-valued and driven by one `TinyRng` seed, so a spec is
//! `Copy + Eq + Hash + Ord`, keys the same caches a [`Game`] does, and
//! round-trips exactly through its canonical label and the PGTR/PGRPC
//! wire encodings.
//!
//! Determinism contract: the same spec, resolution, and frame count
//! produce bit-identical [`SceneTrace`]s on every platform and thread
//! count — geometry, texel data, and cameras are pure functions of the
//! spec (see `docs/WORKLOADS.md`).

use crate::games::{Game, Resolution};
use crate::mesh;
use crate::procedural::{generate, TextureKind};
use crate::scene::{DrawCall, SceneTrace};
use pimgfx_raster::Camera;
use pimgfx_texture::MippedTexture;
use pimgfx_types::{ConfigError, TextureId, TinyRng, Vec3};
use std::fmt;

/// Label prefix of a synthetic workload (`syn.…`).
pub const SYNTHETIC_PREFIX: &str = "syn";

/// Fragment-shader ALU ops per pixel for every synthetic scene (the
/// games sweep this axis via their profiles; synthetic workloads pin it
/// so the spec parameters above stay the only degrees of freedom).
pub const SYNTHETIC_SHADER_ALU_OPS: u32 = 96;

/// Largest accepted triangle budget (`1 << 20`).
pub const MAX_TRIANGLES: u32 = 1 << 20;
/// Largest accepted texture count.
pub const MAX_TEXTURES: u32 = 1024;
/// Largest accepted texture edge length, texels.
pub const MAX_TEXTURE_SIZE: u32 = 4096;
/// Largest accepted overdraw depth.
pub const MAX_OVERDRAW: u32 = 64;
/// Largest accepted camera-path period, frames (`1 << 20`, the PGTR
/// camera-count cap).
pub const MAX_PATH_FRAMES: u32 = 1 << 20;

/// A fully parameterized synthetic workload.
///
/// All fields are integers (ratios are per-mille) so the spec derives
/// `Copy`, `Eq`, `Hash`, and `Ord` — it is used directly as a cache
/// key, a report-map key, and a wire payload. The canonical text form
/// (`Display` / [`SyntheticSpec::from_label`]) is
/// `syn.<seed:hex>.<triangles>.<textures>.<texture_size>.<kind_mask:hex>.<grazing_milli>.<overdraw>.<path_frames>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyntheticSpec {
    /// Seed of every random choice in the build (`TinyRng`).
    pub seed: u64,
    /// Per-frame triangle budget across all layers (approximate: the
    /// builder tessellates to the nearest grid that fits the budget).
    pub triangles: u32,
    /// Distinct textures in the scene.
    pub textures: u32,
    /// Texture edge length, texels (power of two).
    pub texture_size: u32,
    /// Bitmask over [`TextureKind::ALL`] selecting which procedural
    /// kinds participate (bit 0 = `Checker`, … bit 3 = `Stone`).
    pub kind_mask: u32,
    /// Anisotropy pressure, per-mille: the share of the triangle
    /// budget spent on grazing-angle floor/ceiling surfaces, and how
    /// low/level the camera flies (0 = all camera-facing isotropic
    /// content, 1000 = maximally grazing).
    pub grazing_milli: u32,
    /// Overdraw depth: how many stacked copies of the scene geometry
    /// are drawn per frame (1 = no extra overdraw).
    pub overdraw: u32,
    /// Period of the animated camera path, frames: the walkthrough
    /// weaves with this cycle length however many frames are rendered.
    pub path_frames: u32,
}

impl SyntheticSpec {
    /// Checks every parameter against the generator's documented
    /// envelope (the synthetic analogue of `SimConfig::validate`).
    ///
    /// # Errors
    ///
    /// Rejects zero triangles/textures/path frames, a zero or
    /// non-power-of-two texture size, an empty or out-of-range texture
    /// kind mask, out-of-range anisotropy pressure, and out-of-range
    /// overdraw.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: String| Err(ConfigError::new("synthetic workload", reason));
        if self.triangles == 0 || self.triangles > MAX_TRIANGLES {
            return err(format!(
                "triangle budget must be in 1..={MAX_TRIANGLES}, got {}",
                self.triangles
            ));
        }
        if self.textures == 0 || self.textures > MAX_TEXTURES {
            return err(format!(
                "texture count must be in 1..={MAX_TEXTURES}, got {}",
                self.textures
            ));
        }
        if !self.texture_size.is_power_of_two() || self.texture_size > MAX_TEXTURE_SIZE {
            return err(format!(
                "texture size must be a power of two in 1..={MAX_TEXTURE_SIZE}, got {}",
                self.texture_size
            ));
        }
        if self.kind_mask == 0 || self.kind_mask >= (1 << TextureKind::ALL.len()) {
            return err(format!(
                "texture kind mask must be in 0x1..=0x{:x}, got 0x{:x}",
                (1u32 << TextureKind::ALL.len()) - 1,
                self.kind_mask
            ));
        }
        if self.grazing_milli > 1000 {
            return err(format!(
                "grazing pressure is per-mille (0..=1000), got {}",
                self.grazing_milli
            ));
        }
        if self.overdraw == 0 || self.overdraw > MAX_OVERDRAW {
            return err(format!(
                "overdraw depth must be in 1..={MAX_OVERDRAW}, got {}",
                self.overdraw
            ));
        }
        if self.path_frames == 0 || self.path_frames > MAX_PATH_FRAMES {
            return err(format!(
                "camera path period must be in 1..={MAX_PATH_FRAMES} frames, got {}",
                self.path_frames
            ));
        }
        Ok(())
    }

    /// The texture kinds selected by [`SyntheticSpec::kind_mask`], in
    /// [`TextureKind::ALL`] order.
    pub fn kinds(&self) -> Vec<TextureKind> {
        TextureKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| self.kind_mask & (1 << i) != 0)
            .map(|(_, k)| k)
            .collect()
    }

    /// Parses the canonical label form (the inverse of `Display`).
    pub fn from_label(label: &str) -> Option<SyntheticSpec> {
        let mut parts = label.split('.');
        if parts.next()? != SYNTHETIC_PREFIX {
            return None;
        }
        let spec = SyntheticSpec {
            seed: u64::from_str_radix(parts.next()?, 16).ok()?,
            triangles: parts.next()?.parse().ok()?,
            textures: parts.next()?.parse().ok()?,
            texture_size: parts.next()?.parse().ok()?,
            kind_mask: u32::from_str_radix(parts.next()?, 16).ok()?,
            grazing_milli: parts.next()?.parse().ok()?,
            overdraw: parts.next()?.parse().ok()?,
            path_frames: parts.next()?.parse().ok()?,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(spec)
    }
}

impl fmt::Display for SyntheticSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{SYNTHETIC_PREFIX}.{:x}.{}.{}.{}.{:x}.{}.{}.{}",
            self.seed,
            self.triangles,
            self.textures,
            self.texture_size,
            self.kind_mask,
            self.grazing_milli,
            self.overdraw,
            self.path_frames
        )
    }
}

/// The identity of a renderable workload: one of the paper's Table II
/// games, or a procedural [`SyntheticSpec`].
///
/// This is the key type of every layer that used to hardcode `Game`:
/// scene/stream cache keys, sweep columns, manifest column labels, and
/// the PGRPC job/matrix specs. `From<Game>` keeps game-only call sites
/// terse (`cache.get(Game::Doom3, res)` still compiles wherever the
/// API takes `impl Into<Workload>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// A Table II game trace.
    Game(Game),
    /// A procedural synthetic workload.
    Synthetic(SyntheticSpec),
}

impl Workload {
    /// Canonical label: the game's short label (`doom3`), or the
    /// spec's canonical `syn.…` form. Labels are unique per workload
    /// and are the routing/report keys throughout the stack.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a canonical label — a game short label or a `syn.…`
    /// spec — back into a workload.
    pub fn from_label(label: &str) -> Option<Workload> {
        if let Some(game) = Game::ALL.into_iter().find(|g| g.label() == label) {
            return Some(Workload::Game(game));
        }
        SyntheticSpec::from_label(label).map(Workload::Synthetic)
    }

    /// The underlying game, when this is a game workload.
    pub fn as_game(&self) -> Option<Game> {
        match self {
            Workload::Game(g) => Some(*g),
            Workload::Synthetic(_) => None,
        }
    }

    /// The underlying spec, when this is a synthetic workload.
    pub fn as_synthetic(&self) -> Option<SyntheticSpec> {
        match self {
            Workload::Game(_) => None,
            Workload::Synthetic(s) => Some(*s),
        }
    }
}

impl From<Game> for Workload {
    fn from(game: Game) -> Self {
        Workload::Game(game)
    }
}

impl From<SyntheticSpec> for Workload {
    fn from(spec: SyntheticSpec) -> Self {
        Workload::Synthetic(spec)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Game(g) => f.write_str(g.label()),
            Workload::Synthetic(s) => s.fmt(f),
        }
    }
}

/// Builds the walkthrough trace of a synthetic workload: `frames`
/// frames of an animated camera path over a procedurally tessellated
/// corridor, with the triangle budget split between grazing-angle
/// floor/ceiling sheets and camera-facing props per
/// [`SyntheticSpec::grazing_milli`], stacked
/// [`SyntheticSpec::overdraw`] layers deep.
///
/// The build is a pure function of `(spec, resolution, frames)`; see
/// the module docs for the determinism contract.
///
/// # Panics
///
/// Panics if `frames` is zero or the spec fails
/// [`SyntheticSpec::validate`] (servers validate at submission, the
/// same contract `build_scene` has for Table II columns).
pub fn synthesize(spec: &SyntheticSpec, resolution: Resolution, frames: usize) -> SceneTrace {
    assert!(frames > 0, "a trace needs at least one frame");
    let valid = spec.validate();
    assert!(valid.is_ok(), "invalid synthetic spec {spec}: {valid:?}");

    let kinds = spec.kinds();
    let textures: Vec<MippedTexture> = (0..spec.textures)
        .map(|i| {
            let kind = kinds[i as usize % kinds.len()];
            let img = generate(kind, spec.texture_size, spec.seed ^ u64::from(i));
            MippedTexture::with_full_chain(img).with_id(TextureId::new(i))
        })
        .collect();
    let tex = |i: u32| TextureId::new(i % spec.textures);

    // Budget split: grazing sheets vs facing props, then across layers.
    let depth = 48.0f32;
    let budget = u64::from(spec.triangles);
    let grazing_budget = budget * u64::from(spec.grazing_milli) / 1000;
    let facing_budget = budget - grazing_budget;
    let layers = u64::from(spec.overdraw);

    // Each layer draws a floor and a ceiling grid of q×q quads
    // (2·q²·2 triangles per layer); pick q to fill the grazing share.
    let per_grid = (grazing_budget / (layers * 4)).max(1);
    let q = ((per_grid as f64).sqrt() as u32).max(1);

    // Facing props are batched one draw call per texture; each
    // `facing_quad` contributes 8 triangles.
    let props = (facing_budget / (layers * 8)).max(1) as u32;

    let mut rng = TinyRng::seed_from_u64(spec.seed ^ 0x5CE7E);
    let mut draws: Vec<DrawCall> = Vec::new();
    for layer in 0..spec.overdraw {
        let lseed = spec.seed ^ (u64::from(layer) << 32);
        // Successive overdraw layers stack slightly above the last so
        // every layer survives the depth test (real overdraw traffic).
        let lift = layer as f32 * 0.01;
        if spec.grazing_milli > 0 {
            draws.push(DrawCall {
                triangles: mesh::floor(lift, 10.0, depth, q, 1.25, 0.05, lseed),
                texture: tex(2 * layer),
            });
            draws.push(DrawCall {
                triangles: mesh::grid(
                    Vec3::new(-5.0, 4.0 - lift, 0.0),
                    Vec3::new(10.0, 0.0, 0.0),
                    Vec3::new(0.0, 0.0, -depth),
                    -Vec3::Y,
                    q,
                    q,
                    1.25,
                    0.05,
                    lseed ^ 1,
                ),
                texture: tex(2 * layer + 1),
            });
        }
        if facing_budget > 0 {
            // One batched draw call per texture keeps the draw count
            // bounded however large the prop budget gets.
            let mut batches: Vec<Vec<[pimgfx_raster::Vertex; 3]>> =
                vec![Vec::new(); spec.textures as usize];
            for p in 0..props {
                let x = rng.next_f32() * 8.0 - 4.0;
                let y = rng.next_f32() * 3.0 + 0.5;
                let z = -(rng.next_f32() * (depth - 6.0) + 4.0) - lift;
                let half = rng.next_f32() * 0.8 + 0.4;
                batches[(p % spec.textures) as usize].extend(mesh::facing_quad(
                    Vec3::new(x, y, z),
                    half,
                    1.5,
                    0.03,
                    lseed ^ (0x100 + u64::from(p)),
                ));
            }
            for (t, triangles) in batches.into_iter().enumerate() {
                if !triangles.is_empty() {
                    draws.push(DrawCall {
                        triangles,
                        texture: tex(t as u32),
                    });
                }
            }
        }
    }

    // Animated camera path, period `path_frames`: the eye weaves
    // sideways and bobs while walking the corridor; grazing pressure
    // flattens the flight (lower eye, more level gaze ⇒ the floor
    // fills the frame at grazing angles).
    let g = spec.grazing_milli as f32 / 1000.0;
    let (w, h) = resolution.dims();
    let aspect = w as f32 / h as f32;
    let cameras = (0..frames)
        .map(|f| {
            let phase = (f % spec.path_frames as usize) as f32 / spec.path_frames as f32
                * std::f32::consts::TAU;
            let eye = Vec3::new(
                phase.sin() * 1.5,
                (1.8 - 1.4 * g) + phase.cos() * 0.1 * (1.0 - g),
                -(f as f32) * 0.6,
            );
            let target = eye + Vec3::new(phase.sin() * 0.2, -0.4 * (1.0 - g) - 0.02, -1.0);
            Camera::look_at(eye, target, Vec3::Y, std::f32::consts::FRAC_PI_3, aspect)
        })
        .collect();

    SceneTrace {
        workload: Workload::Synthetic(*spec),
        resolution,
        textures,
        draws,
        cameras,
        shader_alu_ops: SYNTHETIC_SHADER_ALU_OPS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec {
            seed: 0xC0FFEE,
            triangles: 2000,
            textures: 6,
            texture_size: 64,
            kind_mask: 0xF,
            grazing_milli: 600,
            overdraw: 2,
            path_frames: 4,
        }
    }

    #[test]
    fn valid_spec_passes_validation() {
        spec().validate().expect("reference spec is valid");
    }

    #[test]
    fn validation_rejects_each_bad_parameter() {
        let cases: Vec<(&str, SyntheticSpec)> = vec![
            (
                "triangle",
                SyntheticSpec {
                    triangles: 0,
                    ..spec()
                },
            ),
            (
                "triangle",
                SyntheticSpec {
                    triangles: MAX_TRIANGLES + 1,
                    ..spec()
                },
            ),
            (
                "texture count",
                SyntheticSpec {
                    textures: 0,
                    ..spec()
                },
            ),
            (
                "texture size",
                SyntheticSpec {
                    texture_size: 0,
                    ..spec()
                },
            ),
            (
                "texture size",
                SyntheticSpec {
                    texture_size: 100,
                    ..spec()
                },
            ),
            (
                "kind mask",
                SyntheticSpec {
                    kind_mask: 0,
                    ..spec()
                },
            ),
            (
                "kind mask",
                SyntheticSpec {
                    kind_mask: 0x10,
                    ..spec()
                },
            ),
            (
                "per-mille",
                SyntheticSpec {
                    grazing_milli: 1001,
                    ..spec()
                },
            ),
            (
                "overdraw",
                SyntheticSpec {
                    overdraw: 0,
                    ..spec()
                },
            ),
            (
                "overdraw",
                SyntheticSpec {
                    overdraw: MAX_OVERDRAW + 1,
                    ..spec()
                },
            ),
            (
                "path period",
                SyntheticSpec {
                    path_frames: 0,
                    ..spec()
                },
            ),
        ];
        for (needle, bad) in cases {
            let err = bad.validate().expect_err("must reject").to_string();
            assert!(err.contains(needle), "`{err}` should mention {needle}");
        }
    }

    #[test]
    fn labels_round_trip_exactly() {
        let s = spec();
        let label = s.to_string();
        assert!(label.starts_with("syn."), "{label}");
        assert_eq!(SyntheticSpec::from_label(&label), Some(s));
        assert_eq!(Workload::from_label(&label), Some(Workload::Synthetic(s)));
        assert_eq!(
            Workload::from_label("doom3"),
            Some(Workload::Game(Game::Doom3))
        );
        assert_eq!(Workload::from_label("syn.zz.1"), None);
        assert_eq!(Workload::from_label("nonsense"), None);
        // Trailing garbage is rejected, not ignored.
        assert_eq!(SyntheticSpec::from_label(&format!("{label}.9")), None);
    }

    #[test]
    fn workload_accessors_and_conversions() {
        let w: Workload = Game::Fear.into();
        assert_eq!(w.as_game(), Some(Game::Fear));
        assert_eq!(w.as_synthetic(), None);
        let s: Workload = spec().into();
        assert_eq!(s.as_game(), None);
        assert_eq!(s.as_synthetic(), Some(spec()));
        assert_eq!(w.label(), "fear");
    }

    #[test]
    fn synthesized_scene_is_deterministic_and_within_budget() {
        let a = synthesize(&spec(), Resolution::R320x240, 3);
        let b = synthesize(&spec(), Resolution::R320x240, 3);
        assert_eq!(a.frame_count(), 3);
        assert_eq!(a.textures.len(), 6);
        assert_eq!(a.triangles_per_frame(), b.triangles_per_frame());
        assert_eq!(
            a.draws[0].triangles[0][0].position,
            b.draws[0].triangles[0][0].position
        );
        assert_eq!(
            a.textures[0].level(0).texel(3, 3),
            b.textures[0].level(0).texel(3, 3)
        );
        assert!(a.triangles_per_frame() > 0);
        // The tessellation never overshoots the budget by more than the
        // rounding of one grid row plus one prop batch.
        assert!(
            (a.triangles_per_frame() as u64) <= u64::from(spec().triangles) * 2,
            "budget {} produced {} triangles",
            spec().triangles,
            a.triangles_per_frame()
        );
        for d in &a.draws {
            assert!(d.texture.index() < a.textures.len());
        }
    }

    #[test]
    fn grazing_pressure_lowers_the_camera() {
        let level = synthesize(
            &SyntheticSpec {
                grazing_milli: 1000,
                ..spec()
            },
            Resolution::R320x240,
            1,
        );
        let steep = synthesize(
            &SyntheticSpec {
                grazing_milli: 0,
                ..spec()
            },
            Resolution::R320x240,
            1,
        );
        assert!(
            level.cameras[0].eye().y < steep.cameras[0].eye().y,
            "more grazing pressure must fly lower"
        );
    }

    #[test]
    fn kind_mask_selects_texture_kinds() {
        let only_noise = SyntheticSpec {
            kind_mask: 0b0100,
            ..spec()
        };
        assert_eq!(only_noise.kinds(), vec![TextureKind::ALL[2]]);
        assert_eq!(spec().kinds().len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid synthetic spec")]
    fn synthesize_rejects_invalid_specs() {
        let _ = synthesize(
            &SyntheticSpec {
                overdraw: 0,
                ..spec()
            },
            Resolution::R320x240,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn synthesize_rejects_zero_frames() {
        let _ = synthesize(&spec(), Resolution::R320x240, 0);
    }
}
