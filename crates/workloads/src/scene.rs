//! Scene assembly: geometry + textures + a camera walkthrough.
//!
//! Besides the one-shot builders ([`build_scene`] /
//! [`build_scene_unchecked`]), this module provides [`SceneCache`]: a
//! thread-safe, memoizing store of built traces. A parallel sweep (see
//! `pimgfx-bench`) runs many `(game, resolution, variant)` cells that
//! share the same scene; the cache builds each `(game, resolution)`
//! trace once and hands every worker an [`Arc`] to it instead of
//! regenerating the geometry and textures per design variant.

use crate::games::{Game, GameProfile, Resolution};
use crate::mesh;
use crate::procedural::{generate, TextureKind};
use crate::synthetic::{synthesize, Workload};
use pimgfx_raster::{Camera, Vertex};
use pimgfx_texture::{MippedTexture, TextureImage};
use pimgfx_types::{FxHashMap, TextureId, Vec3};
use std::sync::{Arc, Mutex, PoisonError};

/// One draw call: a triangle list bound to a texture.
#[derive(Debug, Clone)]
pub struct DrawCall {
    /// Triangles in world space.
    pub triangles: Vec<[Vertex; 3]>,
    /// Bound texture.
    pub texture: TextureId,
}

impl DrawCall {
    /// Triangle count.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// True when the draw has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

/// A renderable trace: static scene geometry, its textures, and one
/// camera per frame of the walkthrough.
#[derive(Debug, Clone)]
pub struct SceneTrace {
    /// The workload identity this trace renders: a Table II game or a
    /// synthetic spec. It is the trace's cache/report key.
    pub workload: Workload,
    /// Frame resolution.
    pub resolution: Resolution,
    /// Scene textures, indexed by [`TextureId`].
    pub textures: Vec<MippedTexture>,
    /// Static draw calls replayed every frame.
    pub draws: Vec<DrawCall>,
    /// One camera per frame.
    pub cameras: Vec<Camera>,
    /// Fragment-shader ALU ops per pixel (from the game profile).
    pub shader_alu_ops: u32,
}

impl SceneTrace {
    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.resolution.dims().0
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.resolution.dims().1
    }

    /// Number of frames in the walkthrough.
    pub fn frame_count(&self) -> usize {
        self.cameras.len()
    }

    /// Total triangles per frame.
    pub fn triangles_per_frame(&self) -> usize {
        self.draws.iter().map(DrawCall::len).sum()
    }

    /// Looks up a texture by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn texture(&self, id: TextureId) -> &MippedTexture {
        &self.textures[id.index()]
    }
}

// Scene traces cross sweep-worker threads by shared reference; keep the
// guarantee checked at compile time so a future field cannot silently
// drop it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SceneTrace>();
};

/// A thread-safe, memoizing cache of walkthrough traces.
///
/// Every `(game, resolution)` column is built at most once (per cache);
/// concurrent readers share the result through an [`Arc`]. This is what
/// lets a parallel sweep fan design variants of the same column out
/// across workers without regenerating the scene per variant.
///
/// By default the cache is unbounded — a batch sweep touches each
/// column once, so nothing ever needs to be dropped. A long-lived
/// process (the `pimgfx-serve` daemon) instead constructs it with
/// [`SceneCache::with_capacity`], which bounds the resident column
/// count with least-recently-used eviction; evictions are counted and
/// surfaced through [`SceneCache::evictions`].
///
/// # Examples
///
/// ```
/// use pimgfx_workloads::{Game, Resolution, SceneCache};
///
/// let cache = SceneCache::new(1);
/// let a = cache.get(Game::Doom3, Resolution::R320x240);
/// let b = cache.get(Game::Doom3, Resolution::R320x240);
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "second get is a cache hit");
/// ```
#[derive(Debug)]
pub struct SceneCache {
    frames: usize,
    capacity: Option<usize>,
    // lock:rank(30, workloads.scene.cache)
    inner: Mutex<CacheState>,
}

/// Mutex-guarded interior of a [`SceneCache`]: the memo map plus the
/// recency list (least-recently-used first) and the eviction counter.
#[derive(Debug, Default)]
struct CacheState {
    map: FxHashMap<(Workload, Resolution), Arc<SceneTrace>>,
    lru: Vec<(Workload, Resolution)>,
    evictions: u64,
}

impl SceneCache {
    /// Creates an unbounded cache whose traces all have `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero (a trace needs at least one frame).
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "a trace needs at least one frame");
        Self {
            frames,
            capacity: None,
            inner: Mutex::new(CacheState::default()),
        }
    }

    /// Creates a cache bounded to `capacity` resident columns; the
    /// least-recently-used column is evicted when a build would exceed
    /// the bound. A re-requested evicted column is simply rebuilt (the
    /// builds are deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `frames` or `capacity` is zero.
    pub fn with_capacity(frames: usize, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "a bounded cache needs capacity for at least one column"
        );
        let mut cache = Self::new(frames);
        cache.capacity = Some(capacity);
        cache
    }

    /// Frames per cached trace.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The resident-column bound, or `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of columns evicted so far (always 0 for an unbounded
    /// cache). Monotonic over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Number of distinct columns resident right now.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no column is resident.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// Returns the trace for a benchmark column, building it on first
    /// use.
    ///
    /// The (deterministic, hence idempotent) build runs outside the
    /// cache lock so other columns stay available while one builds; if
    /// two threads race on the same cold column, the first insertion
    /// wins and both receive the same [`Arc`]. On a bounded cache the
    /// access also refreshes the column's recency, and the insert
    /// evicts least-recently-used columns down to the bound (handed-out
    /// [`Arc`]s stay valid — eviction only drops the cache's own
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics if a game workload's resolution is not in its Table II
    /// set, or a synthetic workload's spec fails validation (same
    /// contracts as [`build_scene`] / [`build_workload`]).
    pub fn get(&self, workload: impl Into<Workload>, res: Resolution) -> Arc<SceneTrace> {
        let key = (workload.into(), res);
        {
            let mut st = self.lock();
            if let Some(scene) = st.map.get(&key) {
                let scene = Arc::clone(scene);
                Self::touch(&mut st.lru, key);
                return scene;
            }
        }
        let built = Arc::new(build_workload(key.0, res, self.frames));
        let mut st = self.lock();
        let out = Arc::clone(st.map.entry(key).or_insert_with(|| Arc::clone(&built)));
        Self::touch(&mut st.lru, key);
        if let Some(cap) = self.capacity {
            while st.map.len() > cap && !st.lru.is_empty() {
                let victim = st.lru.remove(0);
                st.map.remove(&victim);
                st.evictions += 1;
            }
        }
        out
    }

    /// Moves `key` to the most-recently-used end of the recency list.
    fn touch(lru: &mut Vec<(Workload, Resolution)>, key: (Workload, Resolution)) {
        lru.retain(|k| *k != key);
        lru.push(key);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is always in a consistent state.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Builds the trace for any workload: Table II validation + profile
/// build for games, [`synthesize`] for synthetic specs.
///
/// # Panics
///
/// Panics if `frames` is zero, a game's resolution is not in its
/// Table II set, or a synthetic spec fails validation.
pub fn build_workload(workload: Workload, resolution: Resolution, frames: usize) -> SceneTrace {
    match workload {
        Workload::Game(game) => build_scene(game, resolution, frames),
        Workload::Synthetic(spec) => synthesize(&spec, resolution, frames),
    }
}

/// Builds the walkthrough trace for a `(game, resolution)` benchmark
/// column with `frames` frames.
///
/// The scene is a textured corridor: a floor and ceiling seen at grazing
/// angles (the anisotropy-heavy content), two side walls (moderately
/// oblique), and a few camera-facing props (isotropic). The camera walks
/// forward and yaws slightly each frame per the game profile.
///
/// # Panics
///
/// Panics if `frames` is zero or the resolution is not in the game's
/// Table II set (use [`build_scene_unchecked`] for exploratory configs).
pub fn build_scene(game: Game, resolution: Resolution, frames: usize) -> SceneTrace {
    let profile = game.profile();
    assert!(
        profile.resolutions.contains(&resolution),
        "{game} was not evaluated at {resolution} in Table II"
    );
    build_scene_unchecked(&profile, resolution, frames)
}

/// Builds a trace without the Table II resolution check (for sweeps and
/// tests at reduced resolutions).
///
/// # Panics
///
/// Panics if `frames` is zero.
pub fn build_scene_unchecked(
    profile: &GameProfile,
    resolution: Resolution,
    frames: usize,
) -> SceneTrace {
    assert!(frames > 0, "a trace needs at least one frame");

    // Scale texture detail with resolution the way shipped games do
    // (mip bias toward smaller textures at lower resolutions).
    // Full-detail textures at every resolution: shipped games of this
    // era did not rescale assets per display mode, and the resulting
    // cache pressure is what makes texture fetches dominate off-chip
    // traffic (Fig. 2).
    let tex_size = profile.texture_size;
    let _ = &resolution;

    let textures: Vec<MippedTexture> = (0..profile.texture_count)
        .map(|i| {
            let kind = TextureKind::ALL[i as usize % TextureKind::ALL.len()];
            let img: TextureImage = generate(kind, tex_size, profile.seed ^ u64::from(i));
            MippedTexture::with_full_chain(img).with_id(TextureId::new(i))
        })
        .collect();

    let tex = |i: u32| TextureId::new(i % profile.texture_count);
    let q = profile.floor_quads;
    let d = profile.corridor_depth;

    // Floor and ceiling: the grazing-angle, anisotropy-heavy surfaces.
    let mut draws = vec![DrawCall {
        triangles: mesh::floor(
            0.0,
            8.0,
            d,
            q,
            profile.uv_tiles,
            profile.bumpiness,
            profile.seed,
        ),
        texture: tex(0),
    }];
    draws.push(DrawCall {
        triangles: mesh::grid(
            Vec3::new(-4.0, 4.0, 0.0),
            Vec3::new(8.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, -d),
            -Vec3::Y,
            q,
            q,
            profile.uv_tiles,
            profile.bumpiness,
            profile.seed ^ 1,
        ),
        texture: tex(1),
    });

    // Side walls: moderately oblique.
    draws.push(DrawCall {
        triangles: mesh::wall(
            -4.0,
            0.0,
            4.0,
            d,
            q,
            profile.uv_tiles * 0.75,
            profile.bumpiness,
            profile.seed ^ 2,
        ),
        texture: tex(2),
    });
    draws.push(DrawCall {
        triangles: mesh::wall(
            4.0,
            0.0,
            4.0,
            d,
            q,
            profile.uv_tiles * 0.75,
            profile.bumpiness,
            profile.seed ^ 3,
        ),
        texture: tex(3),
    });

    // Facing props spaced down the corridor: isotropic content and
    // overdraw against the walls behind them.
    for p in 0..profile.facing_props {
        let z = -6.0 - (p as f32) * d / (profile.facing_props.max(1) as f32 + 1.0);
        let x = if p % 2 == 0 { -1.5 } else { 1.5 };
        draws.push(DrawCall {
            triangles: mesh::facing_quad(
                Vec3::new(x, 1.5, z),
                1.0,
                2.0,
                profile.bumpiness * 0.5,
                profile.seed ^ (0x100 + u64::from(p)),
            ),
            texture: tex(4 + p),
        });
    }

    // Overdraw layers: translucent-style full-width decals close to the
    // walls, drawn after (and thus z-tested against) the scene.
    for layer in 0..profile.overdraw_layers.saturating_sub(1) {
        draws.push(DrawCall {
            triangles: mesh::facing_quad(
                Vec3::new(0.0, 2.0, -10.0 - layer as f32 * 8.0),
                3.0,
                1.0,
                0.0,
                profile.seed ^ (0x200 + u64::from(layer)),
            ),
            texture: tex(5 + layer),
        });
    }

    // Camera walkthrough: forward motion with slight yaw, looking down
    // the corridor from near floor height (this is what makes the floor
    // grazing).
    let (w, h) = resolution.dims();
    let aspect = w as f32 / h as f32;
    let cameras = (0..frames)
        .map(|f| {
            let t = f as f32;
            let yaw = t * profile.camera_yaw_step;
            let eye = Vec3::new(
                yaw.sin() * 0.5,
                profile.camera_height,
                -t * profile.camera_step,
            );
            let target = eye + Vec3::new(yaw.sin(), -0.06, -yaw.cos());
            Camera::look_at(eye, target, Vec3::Y, std::f32::consts::FRAC_PI_3, aspect)
        })
        .collect();

    SceneTrace {
        workload: Workload::Game(profile.game),
        resolution,
        textures,
        draws,
        cameras,
        shader_alu_ops: profile.shader_alu_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_builds_for_every_benchmark_column() {
        for (game, res) in Game::benchmark_matrix() {
            let s = build_scene(game, res, 2);
            assert!(!s.draws.is_empty(), "{game}@{res}");
            assert!(s.triangles_per_frame() > 50);
            assert_eq!(s.frame_count(), 2);
            assert_eq!(s.textures.len(), game.profile().texture_count as usize);
        }
    }

    #[test]
    fn scene_is_deterministic() {
        let a = build_scene(Game::Fear, Resolution::R640x480, 1);
        let b = build_scene(Game::Fear, Resolution::R640x480, 1);
        assert_eq!(a.triangles_per_frame(), b.triangles_per_frame());
        assert_eq!(
            a.draws[0].triangles[0][0].position,
            b.draws[0].triangles[0][0].position
        );
        assert_eq!(
            a.textures[0].level(0).texel(3, 3),
            b.textures[0].level(0).texel(3, 3)
        );
    }

    #[test]
    #[should_panic(expected = "Table II")]
    fn unlisted_resolution_is_rejected() {
        let _ = build_scene(Game::Riddick, Resolution::R1280x1024, 1);
    }

    #[test]
    fn unchecked_builder_allows_any_resolution() {
        let p = Game::Riddick.profile();
        let s = build_scene_unchecked(&p, Resolution::R320x240, 1);
        assert_eq!(s.width(), 320);
    }

    #[test]
    fn texture_detail_is_resolution_independent() {
        // Games of this era ship one asset set regardless of display
        // mode; the resulting cache pressure at low resolutions is part
        // of the Fig. 2 traffic profile.
        let hi = build_scene(Game::Doom3, Resolution::R1280x1024, 1);
        let lo = build_scene(Game::Doom3, Resolution::R320x240, 1);
        assert_eq!(hi.textures[0].width(), lo.textures[0].width());
        assert_eq!(hi.textures[0].width(), Game::Doom3.profile().texture_size);
    }

    #[test]
    fn cameras_advance_each_frame() {
        let s = build_scene(Game::Doom3, Resolution::R320x240, 3);
        assert!(s.cameras[1].eye().z < s.cameras[0].eye().z);
        assert!(s.cameras[2].eye().z < s.cameras[1].eye().z);
    }

    #[test]
    fn all_draw_texture_ids_resolve() {
        let s = build_scene(Game::Fear, Resolution::R1280x1024, 1);
        for d in &s.draws {
            assert!(d.texture.index() < s.textures.len());
            let _ = s.texture(d.texture);
        }
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = build_scene(Game::Doom3, Resolution::R320x240, 0);
    }

    #[test]
    fn scene_cache_builds_once_and_shares() {
        let cache = SceneCache::new(1);
        assert!(cache.is_empty());
        let a = cache.get(Game::Doom3, Resolution::R320x240);
        let b = cache.get(Game::Doom3, Resolution::R320x240);
        assert!(Arc::ptr_eq(&a, &b), "same column shares one trace");
        assert_eq!(cache.len(), 1);
        assert_eq!(a.frame_count(), 1);
    }

    #[test]
    fn scene_cache_is_shareable_across_threads() {
        let cache = SceneCache::new(1);
        let texels = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        cache.get(Game::Doom3, Resolution::R320x240).textures[0]
                            .level(0)
                            .texel(3, 3)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        });
        assert_eq!(texels[0], texels[1], "threads observe the same scene");
        assert_eq!(cache.len(), 1, "racing builds collapse to one entry");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn scene_cache_rejects_zero_frames() {
        let _ = SceneCache::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn scene_cache_rejects_zero_capacity() {
        let _ = SceneCache::with_capacity(1, 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = SceneCache::new(1);
        assert_eq!(cache.capacity(), None);
        cache.get(Game::Doom3, Resolution::R320x240);
        cache.get(Game::Fear, Resolution::R320x240);
        cache.get(Game::Doom3, Resolution::R640x480);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = SceneCache::with_capacity(1, 2);
        assert_eq!(cache.capacity(), Some(2));
        let doom = cache.get(Game::Doom3, Resolution::R320x240);
        cache.get(Game::Fear, Resolution::R320x240);
        // Touch doom3 so fear becomes the LRU victim.
        cache.get(Game::Doom3, Resolution::R320x240);
        cache.get(Game::Doom3, Resolution::R640x480);
        assert_eq!(cache.len(), 2, "bound holds");
        assert_eq!(cache.evictions(), 1, "fear evicted");
        // The handed-out Arc stays valid, and doom3 is still a hit.
        assert_eq!(doom.frame_count(), 1);
        let doom_again = cache.get(Game::Doom3, Resolution::R320x240);
        assert!(
            Arc::ptr_eq(&doom, &doom_again),
            "doom3 survived the eviction"
        );
        // An evicted column rebuilds into a fresh allocation.
        let fear_again = cache.get(Game::Fear, Resolution::R320x240);
        assert_eq!(fear_again.workload, Workload::Game(Game::Fear));
        assert_eq!(cache.evictions(), 2, "rebuilding fear evicted doom3@640");
    }

    #[test]
    fn cache_keys_games_and_synthetics_separately() {
        let spec = crate::synthetic::SyntheticSpec {
            seed: 7,
            triangles: 64,
            textures: 2,
            texture_size: 16,
            kind_mask: 0x3,
            grazing_milli: 500,
            overdraw: 1,
            path_frames: 2,
        };
        let cache = SceneCache::new(1);
        let syn = cache.get(spec, Resolution::R1920x1080);
        let game = cache.get(Game::Doom3, Resolution::R320x240);
        assert_eq!(cache.len(), 2);
        assert_eq!(syn.workload, Workload::Synthetic(spec));
        assert_eq!(syn.width(), 1920);
        assert_eq!(game.workload.as_game(), Some(Game::Doom3));
        let again = cache.get(Workload::Synthetic(spec), Resolution::R1920x1080);
        assert!(Arc::ptr_eq(&syn, &again), "spec-keyed lookup hits");
    }
}
