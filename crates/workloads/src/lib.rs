//! Procedural game workloads for the `pim-render` GPU simulator.
//!
//! The paper replays ATTILA API traces captured from five commercial
//! games (Table II). Those traces are proprietary, so this crate builds
//! the closest synthetic equivalent: for each title, a procedurally
//! generated walkthrough scene whose *texture statistics* are tuned to
//! the characteristics that drive the paper's results —
//!
//! * the fraction of screen area covered by oblique surfaces (floors and
//!   walls seen at grazing angles), which sets the anisotropy-level
//!   distribution and hence the texel-fetch volume;
//! * texture resolution and count, which set cache working-set size;
//! * surface bumpiness (normal variation), which sets how much the
//!   camera angle differs between pixels sharing a parent texel — the
//!   knob the A-TFIM angle threshold trades against quality;
//! * camera motion per frame, which sets cross-frame angle coherence;
//! * overdraw, which sets Z/color-buffer traffic.
//!
//! Every generator is deterministic (seeded per game) so experiments are
//! exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use pimgfx_workloads::{build_scene, Game, Resolution};
//!
//! let scene = build_scene(Game::Doom3, Resolution::R320x240, 1);
//! assert_eq!(scene.width(), 320);
//! assert!(!scene.draws.is_empty());
//! assert_eq!(scene.cameras.len(), 1);
//! ```

// --- lint wall (checked byte-for-byte by `cargo xtask lint`) ---
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)]

pub mod games;
pub mod mesh;
pub mod procedural;
pub mod scene;
pub mod synthetic;
pub mod trace_io;

pub use games::{Game, GameProfile, Resolution};
pub use scene::{
    build_scene, build_scene_unchecked, build_workload, DrawCall, SceneCache, SceneTrace,
};
pub use synthetic::{synthesize, SyntheticSpec, Workload};
