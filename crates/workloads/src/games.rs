//! The five game profiles of Table II.
//!
//! Each profile parameterizes the procedural scene generator to mimic
//! the texture-statistics envelope of one of the paper's traced titles.
//! The parameters are synthetic (the real traces are proprietary) but
//! are chosen so the *relative* behavior across titles — which games are
//! texture-heavy, which resolutions stress anisotropy hardest — follows
//! the paper's measurements.

use std::fmt;

/// The rendering library a title used (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphicsApi {
    /// OpenGL titles.
    OpenGl,
    /// Direct3D titles.
    Direct3d,
}

impl fmt::Display for GraphicsApi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphicsApi::OpenGl => f.write_str("OpenGL"),
            GraphicsApi::Direct3d => f.write_str("D3D"),
        }
    }
}

/// Frame resolutions used in the evaluation (Table II), plus the
/// modern 1080p/4K points used by synthetic scaling studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resolution {
    /// 320×240.
    R320x240,
    /// 640×480.
    R640x480,
    /// 1280×1024.
    R1280x1024,
    /// 1920×1080 (synthetic scaling studies; not a Table II column).
    R1920x1080,
    /// 3840×2160 (synthetic scaling studies; not a Table II column).
    R3840x2160,
}

impl Resolution {
    /// All resolutions, ascending.
    pub const ALL: [Resolution; 5] = [
        Resolution::R320x240,
        Resolution::R640x480,
        Resolution::R1280x1024,
        Resolution::R1920x1080,
        Resolution::R3840x2160,
    ];

    /// `(width, height)` in pixels.
    pub fn dims(self) -> (u32, u32) {
        match self {
            Resolution::R320x240 => (320, 240),
            Resolution::R640x480 => (640, 480),
            Resolution::R1280x1024 => (1280, 1024),
            Resolution::R1920x1080 => (1920, 1080),
            Resolution::R3840x2160 => (3840, 2160),
        }
    }

    /// Pixel count.
    pub fn pixels(self) -> u64 {
        let (w, h) = self.dims();
        u64::from(w) * u64::from(h)
    }

    /// Parses the `WxH` display form (`"640x480"`, `"1920x1080"`) —
    /// the inverse of this type's `Display` impl.
    pub fn from_label(s: &str) -> Option<Resolution> {
        Resolution::ALL.into_iter().find(|r| r.to_string() == s)
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, h) = self.dims();
        write!(f, "{w}x{h}")
    }
}

/// The five evaluated titles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Game {
    /// Doom 3 (OpenGL, id Tech 4).
    Doom3,
    /// F.E.A.R. (D3D, Jupiter EX).
    Fear,
    /// Half-Life 2 (D3D, Source).
    HalfLife2,
    /// The Chronicles of Riddick (OpenGL, in-house engine).
    Riddick,
    /// Wolfenstein (D3D, id Tech 4).
    Wolfenstein,
}

impl Game {
    /// All titles in the paper's presentation order.
    pub const ALL: [Game; 5] = [
        Game::Doom3,
        Game::Fear,
        Game::HalfLife2,
        Game::Riddick,
        Game::Wolfenstein,
    ];

    /// Short lowercase label used in reports ("doom3", "hl2", ...).
    pub fn label(self) -> &'static str {
        match self {
            Game::Doom3 => "doom3",
            Game::Fear => "fear",
            Game::HalfLife2 => "hl2",
            Game::Riddick => "riddick",
            Game::Wolfenstein => "wolf",
        }
    }

    /// The profile driving the scene generator.
    pub fn profile(self) -> GameProfile {
        match self {
            Game::Doom3 => GameProfile {
                game: self,
                api: GraphicsApi::OpenGl,
                engine: "Id Tech 4",
                resolutions: &[
                    Resolution::R1280x1024,
                    Resolution::R640x480,
                    Resolution::R320x240,
                ],
                texture_size: 512,
                texture_count: 10,
                floor_quads: 12,
                corridor_depth: 60.0,
                uv_tiles: 1.3,
                bumpiness: 0.045,
                facing_props: 3,
                overdraw_layers: 1,
                camera_height: 1.0,
                camera_step: 0.8,
                camera_yaw_step: 0.008,
                shader_alu_ops: 145,
                seed: 0xD003,
            },
            Game::Fear => GameProfile {
                game: self,
                api: GraphicsApi::Direct3d,
                engine: "Jupiter EX",
                resolutions: &[
                    Resolution::R1280x1024,
                    Resolution::R640x480,
                    Resolution::R320x240,
                ],
                texture_size: 512,
                texture_count: 12,
                floor_quads: 10,
                corridor_depth: 50.0,
                uv_tiles: 1.1,
                bumpiness: 0.06,
                facing_props: 5,
                overdraw_layers: 2,
                camera_height: 1.1,
                camera_step: 0.6,
                camera_yaw_step: 0.010,
                shader_alu_ops: 170,
                seed: 0xFEA4,
            },
            Game::HalfLife2 => GameProfile {
                game: self,
                api: GraphicsApi::Direct3d,
                engine: "Source Engine",
                resolutions: &[Resolution::R1280x1024, Resolution::R640x480],
                texture_size: 1024,
                texture_count: 12,
                floor_quads: 14,
                corridor_depth: 80.0,
                uv_tiles: 1.5,
                bumpiness: 0.04,
                facing_props: 4,
                overdraw_layers: 1,
                camera_height: 1.0,
                camera_step: 1.0,
                camera_yaw_step: 0.007,
                shader_alu_ops: 155,
                seed: 0x1F2,
            },
            Game::Riddick => GameProfile {
                game: self,
                api: GraphicsApi::OpenGl,
                engine: "In-House Engine",
                resolutions: &[Resolution::R640x480],
                texture_size: 512,
                texture_count: 8,
                floor_quads: 10,
                corridor_depth: 40.0,
                uv_tiles: 1.0,
                bumpiness: 0.08,
                facing_props: 2,
                overdraw_layers: 2,
                camera_height: 1.1,
                camera_step: 0.5,
                camera_yaw_step: 0.012,
                shader_alu_ops: 185,
                seed: 0x41DD,
            },
            Game::Wolfenstein => GameProfile {
                game: self,
                api: GraphicsApi::Direct3d,
                engine: "Id Tech 4",
                resolutions: &[Resolution::R640x480],
                texture_size: 512,
                texture_count: 10,
                floor_quads: 8,
                corridor_depth: 45.0,
                uv_tiles: 1.2,
                bumpiness: 0.05,
                facing_props: 3,
                overdraw_layers: 1,
                camera_height: 1.0,
                camera_step: 0.7,
                camera_yaw_step: 0.009,
                shader_alu_ops: 130,
                seed: 0x301F,
            },
        }
    }

    /// Every `(game, resolution)` pair of Table II, in order — the eleven
    /// benchmark columns of the paper's figures.
    pub fn benchmark_matrix() -> Vec<(Game, Resolution)> {
        Game::ALL
            .into_iter()
            .flat_map(|g| {
                g.profile()
                    .resolutions
                    .iter()
                    .map(move |&r| (g, r))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

impl fmt::Display for Game {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scene-generation parameters for one title.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameProfile {
    /// The title.
    pub game: Game,
    /// Rendering library (Table II).
    pub api: GraphicsApi,
    /// 3D engine name (Table II).
    pub engine: &'static str,
    /// Resolutions evaluated for this title (Table II).
    pub resolutions: &'static [Resolution],
    /// Texture edge length (texels) at full detail.
    pub texture_size: u32,
    /// Distinct textures in the scene.
    pub texture_count: u32,
    /// Floor/wall tessellation (quads per edge).
    pub floor_quads: u32,
    /// Corridor depth in world units (longer ⇒ more grazing area).
    pub corridor_depth: f32,
    /// Texture repeats across a surface (higher ⇒ denser texel
    /// footprints).
    pub uv_tiles: f32,
    /// Normal perturbation amplitude, radians (camera-angle variance).
    pub bumpiness: f32,
    /// Camera-facing props per frame (isotropic content).
    pub facing_props: u32,
    /// Extra full-screen overdraw passes (Z/color traffic).
    pub overdraw_layers: u32,
    /// Camera height above the floor.
    pub camera_height: f32,
    /// Forward camera motion per frame, world units.
    pub camera_step: f32,
    /// Camera yaw change per frame, radians.
    pub camera_yaw_step: f32,
    /// Fragment-shader ALU ops per pixel.
    pub shader_alu_ops: u32,
    /// Deterministic seed for all procedural content.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_matrix_matches_table_two() {
        let m = Game::benchmark_matrix();
        // 3 + 3 + 2 + 1 + 1 = 10 benchmark columns... plus doom3 covers
        // three resolutions: total 10.
        assert_eq!(m.len(), 10);
        assert_eq!(
            m.iter().filter(|(g, _)| *g == Game::Doom3).count(),
            3,
            "Doom3 runs three resolutions"
        );
        assert_eq!(
            m.iter().filter(|(g, _)| *g == Game::Riddick).count(),
            1,
            "Riddick runs 640x480 only"
        );
    }

    #[test]
    fn resolutions_have_correct_dims() {
        assert_eq!(Resolution::R320x240.dims(), (320, 240));
        assert_eq!(Resolution::R1280x1024.pixels(), 1280 * 1024);
        assert_eq!(Resolution::R640x480.to_string(), "640x480");
        assert_eq!(Resolution::R1920x1080.dims(), (1920, 1080));
        assert_eq!(Resolution::R3840x2160.pixels(), 3840 * 2160);
    }

    #[test]
    fn resolution_labels_round_trip() {
        for r in Resolution::ALL {
            assert_eq!(Resolution::from_label(&r.to_string()), Some(r));
        }
        assert_eq!(Resolution::from_label("641x480"), None);
        // The new scaling points are not Table II columns: no game
        // profile may list them.
        for g in Game::ALL {
            for r in g.profile().resolutions {
                assert!(matches!(
                    r,
                    Resolution::R320x240 | Resolution::R640x480 | Resolution::R1280x1024
                ));
            }
        }
    }

    #[test]
    fn profiles_are_internally_consistent() {
        for g in Game::ALL {
            let p = g.profile();
            assert!(!p.resolutions.is_empty());
            assert!(p.texture_size.is_power_of_two());
            assert!(p.texture_count > 0);
            assert!(p.bumpiness >= 0.0 && p.bumpiness < 0.5);
            assert!(p.corridor_depth > 0.0);
            assert_eq!(p.game, g);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for g in Game::ALL {
            assert!(seen.insert(g.label()));
        }
    }

    #[test]
    fn apis_match_table_two() {
        assert_eq!(Game::Doom3.profile().api, GraphicsApi::OpenGl);
        assert_eq!(Game::Fear.profile().api, GraphicsApi::Direct3d);
        assert_eq!(Game::HalfLife2.profile().api, GraphicsApi::Direct3d);
        assert_eq!(Game::Riddick.profile().api, GraphicsApi::OpenGl);
        assert_eq!(Game::Wolfenstein.profile().api, GraphicsApi::Direct3d);
    }
}
