//! Trace capture and replay.
//!
//! The paper's evaluation replays ATTILA API traces captured from
//! running games. This module provides the equivalent facility for our
//! synthetic traces: a [`SceneTrace`] serializes to a compact,
//! versioned binary stream (`PGTR` format) and loads back bit-exactly,
//! so a workload can be generated once, archived, and replayed across
//! simulator versions or shared between machines.
//!
//! Texture *base levels* are stored; the mip pyramid is regenerated on
//! load (the chain construction is deterministic), which keeps traces
//! roughly 25 % smaller than storing every level.

use crate::games::{Game, Resolution};
use crate::scene::{DrawCall, SceneTrace};
use crate::synthetic::{SyntheticSpec, Workload};
use pimgfx_raster::{Camera, Vertex};
use pimgfx_texture::{MippedTexture, TextureImage};
use pimgfx_types::{Mat4, PackedRgba, TextureId, Vec2, Vec3, Vec4};
use std::io::{self, Read, Write};

/// Magic bytes identifying a trace stream.
pub const MAGIC: [u8; 4] = *b"PGTR";
/// Current format version. Version 2 widened the header's game tag
/// into a workload tag (games keep their v1 tags byte-for-byte; tag
/// [`SYNTHETIC_TAG`] is followed by the synthetic spec's fields) and
/// added resolution tags 3/4 (1920×1080, 3840×2160). Version 1 streams
/// still load.
pub const VERSION: u32 = 2;
/// Oldest format version [`load_trace`] still accepts.
pub const MIN_VERSION: u32 = 1;

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a trace, or is a different version.
    Format(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Result alias for trace I/O.
pub type TraceResult<T> = Result<T, TraceError>;

// --- primitive writers/readers -----------------------------------------
//
// The little-endian scalar codec is shared with the `PGRPC` wire
// protocol in `pimgfx-serve`, hence public.

/// Writes one little-endian `u32`.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes one little-endian IEEE-754 `f32` (bit-exact round trip).
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn put_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads one little-endian `u32`.
///
/// # Errors
///
/// Propagates any I/O error from `r`, including `UnexpectedEof` on a
/// truncated stream.
pub fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads one little-endian IEEE-754 `f32` (bit-exact round trip).
///
/// # Errors
///
/// Propagates any I/O error from `r`, including `UnexpectedEof` on a
/// truncated stream.
pub fn get_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Upper bound on any single `Vec::with_capacity` reservation made
/// while decoding (in elements). A stream may *declare* a much larger
/// collection — up to the structural caps — but the reader only
/// reserves up to this much ahead of the bytes actually arriving, so a
/// malicious or corrupt length field cannot trigger a huge up-front
/// allocation; the vector then grows amortized as real data is read.
pub const PREALLOC_CAP: usize = 1 << 16;

/// `Vec::with_capacity` clamped by [`PREALLOC_CAP`]: trust the declared
/// length only as far as a bounded reservation.
fn vec_capped<T>(declared: usize) -> Vec<T> {
    Vec::with_capacity(declared.min(PREALLOC_CAP))
}

fn put_vec3<W: Write>(w: &mut W, v: Vec3) -> io::Result<()> {
    put_f32(w, v.x)?;
    put_f32(w, v.y)?;
    put_f32(w, v.z)
}

fn get_vec3<R: Read>(r: &mut R) -> io::Result<Vec3> {
    Ok(Vec3::new(get_f32(r)?, get_f32(r)?, get_f32(r)?))
}

fn put_vec2<W: Write>(w: &mut W, v: Vec2) -> io::Result<()> {
    put_f32(w, v.x)?;
    put_f32(w, v.y)
}

fn get_vec2<R: Read>(r: &mut R) -> io::Result<Vec2> {
    Ok(Vec2::new(get_f32(r)?, get_f32(r)?))
}

// --- trace format -------------------------------------------------------

/// Serializes `scene` to `w` in `PGTR` format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
///
/// # Examples
///
/// ```
/// use pimgfx_workloads::{build_scene, trace_io, Game, Resolution};
///
/// let scene = build_scene(Game::Wolfenstein, Resolution::R640x480, 1);
/// let mut buf = Vec::new();
/// trace_io::save_trace(&scene, &mut buf)?;
/// let back = trace_io::load_trace(&buf[..])?;
/// assert_eq!(back.triangles_per_frame(), scene.triangles_per_frame());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn save_trace<W: Write>(scene: &SceneTrace, mut w: W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    put_u32(&mut w, VERSION)?;
    put_workload(&mut w, scene.workload)?;
    put_u32(&mut w, resolution_tag(scene.resolution))?;
    put_u32(&mut w, scene.shader_alu_ops)?;

    // Textures: base level only.
    put_u32(&mut w, scene.textures.len() as u32)?;
    for tex in &scene.textures {
        let base = tex.level(0);
        put_u32(&mut w, base.width())?;
        put_u32(&mut w, base.height())?;
        for texel in base.iter() {
            put_u32(&mut w, texel.to_u32())?;
        }
    }

    // Draw calls.
    put_u32(&mut w, scene.draws.len() as u32)?;
    for draw in &scene.draws {
        put_u32(&mut w, draw.texture.raw())?;
        put_u32(&mut w, draw.triangles.len() as u32)?;
        for tri in &draw.triangles {
            for v in tri {
                put_vec3(&mut w, v.position)?;
                put_vec3(&mut w, v.normal)?;
                put_vec2(&mut w, v.uv)?;
            }
        }
    }

    // Cameras: eye + view-projection matrix.
    put_u32(&mut w, scene.cameras.len() as u32)?;
    for cam in &scene.cameras {
        put_vec3(&mut w, cam.eye())?;
        let m = cam.view_proj();
        for c in 0..4 {
            let col = m.col(c);
            put_f32(&mut w, col.x)?;
            put_f32(&mut w, col.y)?;
            put_f32(&mut w, col.z)?;
            put_f32(&mut w, col.w)?;
        }
    }
    Ok(())
}

/// Deserializes a `PGTR` trace from `r`.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for a wrong magic/version, a
/// structurally invalid stream, or a stream that ends before the
/// declared contents (truncation is a malformed trace, not an I/O
/// accident — the caller gets one consistent error class for "these
/// bytes are not a trace"). [`TraceError::Io`] is reserved for real
/// read failures from the underlying reader. Declared lengths are never
/// trusted with more than a [`PREALLOC_CAP`]-element reservation, so an
/// oversized length field fails with `Format` once the stream runs dry
/// instead of attempting a huge allocation first.
pub fn load_trace<R: Read>(r: R) -> TraceResult<SceneTrace> {
    match load_trace_inner(r) {
        Err(TraceError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => Err(
            TraceError::Format("truncated stream: ended before the declared contents".to_string()),
        ),
        other => other,
    }
}

fn load_trace_inner<R: Read>(mut r: R) -> TraceResult<SceneTrace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(TraceError::Format("bad magic".to_string()));
    }
    let version = get_u32(&mut r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(TraceError::Format(format!(
            "unsupported version {version} (expected {MIN_VERSION}..={VERSION})"
        )));
    }
    let workload = if version == 1 {
        // v1 headers carry a bare game tag.
        Workload::Game(game_from_tag(get_u32(&mut r)?)?)
    } else {
        get_workload(&mut r)?
    };
    let resolution = resolution_from_tag(get_u32(&mut r)?)?;
    let shader_alu_ops = get_u32(&mut r)?;

    let tex_count = get_u32(&mut r)? as usize;
    if tex_count > 4096 {
        return Err(TraceError::Format(format!(
            "implausible texture count {tex_count}"
        )));
    }
    let mut textures = vec_capped(tex_count);
    for i in 0..tex_count {
        let w = get_u32(&mut r)?;
        let h = get_u32(&mut r)?;
        if w == 0 || h == 0 || w > 8192 || h > 8192 {
            return Err(TraceError::Format(format!(
                "implausible texture size {w}x{h}"
            )));
        }
        let mut texels = vec_capped((w * h) as usize);
        for _ in 0..w * h {
            texels.push(PackedRgba::from_u32(get_u32(&mut r)?));
        }
        textures.push(
            MippedTexture::with_full_chain(TextureImage::from_texels(w, h, texels))
                .with_id(TextureId::new(i as u32)),
        );
    }

    let draw_count = get_u32(&mut r)? as usize;
    if draw_count > 1 << 20 {
        return Err(TraceError::Format("implausible draw count".to_string()));
    }
    let mut draws = vec_capped(draw_count);
    for _ in 0..draw_count {
        let texture = TextureId::new(get_u32(&mut r)?);
        if texture.index() >= textures.len() {
            return Err(TraceError::Format(format!(
                "draw references texture {texture} of {}",
                textures.len()
            )));
        }
        let tri_count = get_u32(&mut r)? as usize;
        if tri_count > 1 << 24 {
            return Err(TraceError::Format("implausible triangle count".to_string()));
        }
        let mut triangles = vec_capped(tri_count);
        for _ in 0..tri_count {
            let mut tri = [Vertex::new(Vec3::ZERO, Vec3::Z, Vec2::ZERO); 3];
            for v in &mut tri {
                let position = get_vec3(&mut r)?;
                let normal = get_vec3(&mut r)?;
                let uv = get_vec2(&mut r)?;
                *v = Vertex::new(position, normal, uv);
            }
            triangles.push(tri);
        }
        draws.push(DrawCall { triangles, texture });
    }

    let cam_count = get_u32(&mut r)? as usize;
    if cam_count == 0 || cam_count > 1 << 20 {
        return Err(TraceError::Format("implausible frame count".to_string()));
    }
    let mut cameras = vec_capped(cam_count);
    for _ in 0..cam_count {
        let eye = get_vec3(&mut r)?;
        let mut cols = [Vec4::ZERO; 4];
        for col in &mut cols {
            *col = Vec4::new(
                get_f32(&mut r)?,
                get_f32(&mut r)?,
                get_f32(&mut r)?,
                get_f32(&mut r)?,
            );
        }
        let m = Mat4::from_cols(cols[0], cols[1], cols[2], cols[3]);
        cameras.push(Camera::from_view_proj(eye, m));
    }

    Ok(SceneTrace {
        workload,
        resolution,
        textures,
        draws,
        cameras,
        shader_alu_ops,
    })
}

/// Wire tag announcing a synthetic workload (game tags 0–4 keep their
/// v1 byte positions; append-only).
pub const SYNTHETIC_TAG: u32 = 5;

/// Writes a workload identity: a bare game tag, or [`SYNTHETIC_TAG`]
/// followed by the spec's integer fields (seed split low/high `u32`,
/// then triangles, textures, texture size, kind mask, grazing
/// per-mille, overdraw, path frames — all little-endian `u32`).
/// Shared by `PGTR` and the `pimgfx-serve` protocol.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn put_workload<W: Write>(w: &mut W, workload: Workload) -> io::Result<()> {
    match workload {
        Workload::Game(g) => put_u32(w, game_tag(g)),
        Workload::Synthetic(s) => {
            put_u32(w, SYNTHETIC_TAG)?;
            put_u32(w, s.seed as u32)?;
            put_u32(w, (s.seed >> 32) as u32)?;
            put_u32(w, s.triangles)?;
            put_u32(w, s.textures)?;
            put_u32(w, s.texture_size)?;
            put_u32(w, s.kind_mask)?;
            put_u32(w, s.grazing_milli)?;
            put_u32(w, s.overdraw)?;
            put_u32(w, s.path_frames)
        }
    }
}

/// Inverse of [`put_workload`]. Synthetic specs are validated on read,
/// so a decoded workload is always buildable.
///
/// # Errors
///
/// Returns [`TraceError::Format`] for an unknown tag or an invalid
/// synthetic spec; I/O errors propagate from `r`.
pub fn get_workload<R: Read>(r: &mut R) -> TraceResult<Workload> {
    let tag = get_u32(r)?;
    if tag != SYNTHETIC_TAG {
        return Ok(Workload::Game(game_from_tag(tag)?));
    }
    let lo = get_u32(r)?;
    let hi = get_u32(r)?;
    let spec = SyntheticSpec {
        seed: u64::from(lo) | (u64::from(hi) << 32),
        triangles: get_u32(r)?,
        textures: get_u32(r)?,
        texture_size: get_u32(r)?,
        kind_mask: get_u32(r)?,
        grazing_milli: get_u32(r)?,
        overdraw: get_u32(r)?,
        path_frames: get_u32(r)?,
    };
    spec.validate()
        .map_err(|e| TraceError::Format(format!("invalid synthetic spec: {e}")))?;
    Ok(Workload::Synthetic(spec))
}

/// Stable wire tag for a [`Game`] (shared by `PGTR` and the
/// `pimgfx-serve` protocol; append-only — existing tags never change).
pub fn game_tag(g: Game) -> u32 {
    match g {
        Game::Doom3 => 0,
        Game::Fear => 1,
        Game::HalfLife2 => 2,
        Game::Riddick => 3,
        Game::Wolfenstein => 4,
    }
}

/// Inverse of [`game_tag`].
///
/// # Errors
///
/// Returns [`TraceError::Format`] for an unknown tag.
pub fn game_from_tag(t: u32) -> TraceResult<Game> {
    Ok(match t {
        0 => Game::Doom3,
        1 => Game::Fear,
        2 => Game::HalfLife2,
        3 => Game::Riddick,
        4 => Game::Wolfenstein,
        _ => return Err(TraceError::Format(format!("unknown game tag {t}"))),
    })
}

/// Stable wire tag for a [`Resolution`] (shared by `PGTR` and the
/// `pimgfx-serve` protocol; append-only — existing tags never change).
pub fn resolution_tag(r: Resolution) -> u32 {
    match r {
        Resolution::R320x240 => 0,
        Resolution::R640x480 => 1,
        Resolution::R1280x1024 => 2,
        Resolution::R1920x1080 => 3,
        Resolution::R3840x2160 => 4,
    }
}

/// Inverse of [`resolution_tag`].
///
/// # Errors
///
/// Returns [`TraceError::Format`] for an unknown tag.
pub fn resolution_from_tag(t: u32) -> TraceResult<Resolution> {
    Ok(match t {
        0 => Resolution::R320x240,
        1 => Resolution::R640x480,
        2 => Resolution::R1280x1024,
        3 => Resolution::R1920x1080,
        4 => Resolution::R3840x2160,
        _ => return Err(TraceError::Format(format!("unknown resolution tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::build_scene_unchecked;

    fn small_scene() -> SceneTrace {
        let mut p = Game::Riddick.profile();
        p.texture_count = 2;
        p.texture_size = 32;
        p.floor_quads = 2;
        p.facing_props = 1;
        build_scene_unchecked(&p, Resolution::R320x240, 2)
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let back = load_trace(&buf[..]).expect("deserialize");
        assert_eq!(back.workload, scene.workload);
        assert_eq!(back.resolution, scene.resolution);
        assert_eq!(back.shader_alu_ops, scene.shader_alu_ops);
        assert_eq!(back.textures.len(), scene.textures.len());
        assert_eq!(back.draws.len(), scene.draws.len());
        assert_eq!(back.cameras.len(), scene.cameras.len());
        assert_eq!(back.triangles_per_frame(), scene.triangles_per_frame());
    }

    #[test]
    fn roundtrip_preserves_texels_and_mips() {
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let back = load_trace(&buf[..]).expect("deserialize");
        for (a, b) in scene.textures.iter().zip(&back.textures) {
            assert_eq!(
                a.level_count(),
                b.level_count(),
                "mips regenerate identically"
            );
            for l in 0..a.level_count() {
                assert_eq!(a.level(l), b.level(l), "level {l} differs");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_geometry_exactly() {
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let back = load_trace(&buf[..]).expect("deserialize");
        for (da, db) in scene.draws.iter().zip(&back.draws) {
            assert_eq!(da.texture, db.texture);
            assert_eq!(da.triangles, db.triangles);
        }
    }

    #[test]
    fn cameras_replay_identically() {
        use pimgfx_raster::Vertex;
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let back = load_trace(&buf[..]).expect("deserialize");
        let v = Vertex::new(Vec3::new(0.3, 0.7, -2.0), Vec3::Y, Vec2::new(0.2, 0.8));
        for (a, b) in scene.cameras.iter().zip(&back.cameras) {
            let ca = a.transform_vertex(&v);
            let cb = b.transform_vertex(&v);
            assert_eq!(ca.clip, cb.clip, "clip positions must be bit-identical");
            assert!((ca.view_cos - cb.view_cos).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = load_trace(&b"NOPE"[..]).expect_err("bad magic");
        assert!(matches!(err, TraceError::Format(_)));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = load_trace(&buf[..]).expect_err("bad version");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncated_streams_as_format_errors() {
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        // Cutting the stream anywhere — mid-header, mid-texture,
        // mid-geometry — must yield Format ("not a trace"), never a
        // panic and never a leaked UnexpectedEof.
        for cut in [2, 10, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            let err = load_trace(&buf[..cut]).expect_err("truncated");
            assert!(
                matches!(&err, TraceError::Format(m) if m.contains("truncated") || m.contains("magic")),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_declared_lengths_fail_without_huge_allocation() {
        // A stream that *declares* the maximum allowed triangle count
        // (1 << 24, just under the structural cap) but carries no data.
        // The reader must reserve at most PREALLOC_CAP elements and
        // fail with Format once the stream runs dry.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // game: doom3
        buf.extend_from_slice(&0u32.to_le_bytes()); // resolution: 320x240
        buf.extend_from_slice(&8u32.to_le_bytes()); // shader alu ops
        buf.extend_from_slice(&1u32.to_le_bytes()); // one texture...
        buf.extend_from_slice(&1u32.to_le_bytes()); // ...1x1
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0xff00ff00u32.to_le_bytes()); // its texel
        buf.extend_from_slice(&1u32.to_le_bytes()); // one draw
        buf.extend_from_slice(&0u32.to_le_bytes()); // texture 0
        buf.extend_from_slice(&(1u32 << 24).to_le_bytes()); // declares 16M tris
        let err = load_trace(&buf[..]).expect_err("stream is empty past the header");
        assert!(
            matches!(&err, TraceError::Format(m) if m.contains("truncated")),
            "{err}"
        );

        // One past the cap is rejected structurally, before any read.
        let pos = buf.len() - 4;
        buf[pos..].copy_from_slice(&((1u32 << 24) + 1).to_le_bytes());
        let err = load_trace(&buf[..]).expect_err("implausible count");
        assert!(err.to_string().contains("triangle count"), "{err}");
    }

    #[test]
    fn synthetic_traces_round_trip_bit_exactly() {
        let spec = SyntheticSpec {
            seed: 0xDEAD_BEEF_0042,
            triangles: 500,
            textures: 3,
            texture_size: 16,
            kind_mask: 0b1010,
            grazing_milli: 750,
            overdraw: 2,
            path_frames: 3,
        };
        let scene = crate::synthetic::synthesize(&spec, Resolution::R3840x2160, 2);
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let back = load_trace(&buf[..]).expect("deserialize");
        assert_eq!(back.workload, Workload::Synthetic(spec));
        assert_eq!(back.resolution, Resolution::R3840x2160);
        // Bit-exactness: re-serializing the loaded trace reproduces the
        // original stream byte for byte.
        let mut buf2 = Vec::new();
        save_trace(&back, &mut buf2).expect("re-serialize");
        assert_eq!(buf, buf2, "save→load→save must be a byte fixpoint");
    }

    #[test]
    fn version_one_game_streams_still_load() {
        // v1 and v2 game headers are byte-identical except the version
        // field, so patching it back to 1 yields a genuine v1 stream.
        let scene = small_scene();
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = load_trace(&buf[..]).expect("v1 stream must load");
        assert_eq!(back.workload, scene.workload);
        assert_eq!(back.triangles_per_frame(), scene.triangles_per_frame());
    }

    #[test]
    fn invalid_synthetic_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&SYNTHETIC_TAG.to_le_bytes());
        // seed lo/hi, then a zero triangle budget: invalid.
        for field in [7u32, 0, 0, 2, 16, 3, 0, 1, 1] {
            buf.extend_from_slice(&field.to_le_bytes());
        }
        let err = load_trace(&buf[..]).expect_err("invalid spec");
        assert!(err.to_string().contains("synthetic spec"), "{err}");
    }

    #[test]
    fn new_resolution_tags_round_trip() {
        for r in Resolution::ALL {
            assert_eq!(
                resolution_from_tag(resolution_tag(r)).expect("tag"),
                r,
                "{r}"
            );
        }
        assert_eq!(resolution_tag(Resolution::R1920x1080), 3);
        assert_eq!(resolution_tag(Resolution::R3840x2160), 4);
        assert!(resolution_from_tag(5).is_err());
    }

    #[test]
    fn rejects_dangling_texture_reference() {
        let mut scene = small_scene();
        scene.draws[0].texture = TextureId::new(99);
        let mut buf = Vec::new();
        save_trace(&scene, &mut buf).expect("serialize");
        let err = load_trace(&buf[..]).expect_err("dangling texture");
        assert!(err.to_string().contains("references texture"));
    }
}
