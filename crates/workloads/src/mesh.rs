//! Procedural mesh generators.
//!
//! A game frame's anisotropy profile is set by its geometry mix: floors
//! and ceilings seen at grazing angles produce highly anisotropic
//! footprints; walls along the view direction are moderately oblique;
//! surfaces facing the camera are isotropic. The generators here build
//! those three ingredients as tessellated grids with optional normal
//! perturbation ("bumpiness") — the source of per-pixel camera-angle
//! variation that the A-TFIM threshold trades against quality.

use pimgfx_raster::Vertex;
use pimgfx_types::{TinyRng, Vec2, Vec3};

/// Tessellates a rectangular grid into triangles.
///
/// `origin` is the corner, `edge_u`/`edge_v` the full edge vectors,
/// `normal` the unperturbed surface normal, and `(nu, nv)` the quad
/// resolution. `uv_tiles` controls how many times the texture repeats
/// over the surface; `bumpiness` perturbs vertex normals by up to that
/// many radians (seeded, deterministic).
///
/// # Panics
///
/// Panics if `nu` or `nv` is zero.
///
/// # Examples
///
/// ```
/// use pimgfx_workloads::mesh::grid;
/// use pimgfx_types::Vec3;
///
/// let tris = grid(
///     Vec3::ZERO,
///     Vec3::new(10.0, 0.0, 0.0),
///     Vec3::new(0.0, 0.0, 10.0),
///     Vec3::Y,
///     4,
///     4,
///     2.0,
///     0.0,
///     1,
/// );
/// assert_eq!(tris.len(), 4 * 4 * 2);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn grid(
    origin: Vec3,
    edge_u: Vec3,
    edge_v: Vec3,
    normal: Vec3,
    nu: u32,
    nv: u32,
    uv_tiles: f32,
    bumpiness: f32,
    seed: u64,
) -> Vec<[Vertex; 3]> {
    assert!(nu > 0 && nv > 0, "grid resolution must be nonzero");
    let mut rng = TinyRng::seed_from_u64(seed);
    // Perturbation axes spanning the surface.
    let tan_u = edge_u.normalized();
    let tan_v = edge_v.normalized();
    // A *smooth* bump field: random phases/frequencies per surface, but
    // the normal varies continuously across it. Neighboring pixels (and
    // the texels they share) then carry nearly identical camera angles —
    // the coherence the A-TFIM angle threshold exploits — while distant
    // regions and different surfaces still differ enough to trigger
    // recalculation at strict thresholds.
    let (pa, pb) = (
        rng.gen_range_f32(0.0, std::f32::consts::TAU),
        rng.gen_range_f32(0.0, std::f32::consts::TAU),
    );
    let (fa, fb) = (rng.gen_range_f32(1.5, 3.5), rng.gen_range_f32(1.5, 3.5));

    let vertex = |i: u32, j: u32| -> Vertex {
        let fu = i as f32 / nu as f32;
        let fv = j as f32 / nv as f32;
        let pos = origin + edge_u * fu + edge_v * fv;
        let n = if bumpiness > 0.0 {
            let a = bumpiness * (fa * std::f32::consts::TAU * fu + pa).sin();
            let b = bumpiness * (fb * std::f32::consts::TAU * fv + pb).sin();
            (normal + tan_u * a.tan() + tan_v * b.tan()).normalized()
        } else {
            normal
        };
        Vertex::new(pos, n, Vec2::new(fu * uv_tiles, fv * uv_tiles))
    };

    // Pre-generate the vertex lattice so shared corners share normals
    // (no cracks in the angle field).
    let mut lattice = Vec::with_capacity(((nu + 1) * (nv + 1)) as usize);
    for j in 0..=nv {
        for i in 0..=nu {
            lattice.push(vertex(i, j));
        }
    }
    let at = |i: u32, j: u32| lattice[(j * (nu + 1) + i) as usize];

    let mut tris = Vec::with_capacity((nu * nv * 2) as usize);
    for j in 0..nv {
        for i in 0..nu {
            let v00 = at(i, j);
            let v10 = at(i + 1, j);
            let v01 = at(i, j + 1);
            let v11 = at(i + 1, j + 1);
            tris.push([v00, v10, v11]);
            tris.push([v00, v11, v01]);
        }
    }
    tris
}

/// A floor plane extending forward from the camera: the oblique,
/// anisotropy-heavy surface. Lies in the xz-plane at `y`, spanning
/// `width` across x and `depth` along -z.
pub fn floor(
    y: f32,
    width: f32,
    depth: f32,
    quads: u32,
    uv_tiles: f32,
    bumpiness: f32,
    seed: u64,
) -> Vec<[Vertex; 3]> {
    grid(
        Vec3::new(-width / 2.0, y, 0.0),
        Vec3::new(width, 0.0, 0.0),
        Vec3::new(0.0, 0.0, -depth),
        Vec3::Y,
        quads,
        quads,
        uv_tiles,
        bumpiness,
        seed,
    )
}

/// A side wall along the corridor at `x`, spanning `depth` along -z and
/// `height` up: moderately oblique.
#[allow(clippy::too_many_arguments)]
pub fn wall(
    x: f32,
    y0: f32,
    height: f32,
    depth: f32,
    quads: u32,
    uv_tiles: f32,
    bumpiness: f32,
    seed: u64,
) -> Vec<[Vertex; 3]> {
    let normal = if x < 0.0 { Vec3::X } else { -Vec3::X };
    grid(
        Vec3::new(x, y0, 0.0),
        Vec3::new(0.0, 0.0, -depth),
        Vec3::new(0.0, height, 0.0),
        normal,
        quads,
        quads,
        uv_tiles,
        bumpiness,
        seed,
    )
}

/// A camera-facing quad at distance `z` (isotropic footprints).
pub fn facing_quad(
    center: Vec3,
    half: f32,
    uv_tiles: f32,
    bumpiness: f32,
    seed: u64,
) -> Vec<[Vertex; 3]> {
    grid(
        center + Vec3::new(-half, -half, 0.0),
        Vec3::new(2.0 * half, 0.0, 0.0),
        Vec3::new(0.0, 2.0 * half, 0.0),
        Vec3::Z,
        2,
        2,
        uv_tiles,
        bumpiness,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_triangle_count() {
        let tris = grid(Vec3::ZERO, Vec3::X, Vec3::Z, Vec3::Y, 3, 5, 1.0, 0.0, 0);
        assert_eq!(tris.len(), 3 * 5 * 2);
    }

    #[test]
    fn unbumped_grid_has_uniform_normals() {
        let tris = floor(0.0, 10.0, 10.0, 4, 1.0, 0.0, 0);
        for t in &tris {
            for v in t {
                assert_eq!(v.normal, Vec3::Y);
            }
        }
    }

    #[test]
    fn bumpiness_perturbs_normals_but_keeps_unit_length() {
        let tris = floor(0.0, 10.0, 10.0, 4, 1.0, 0.2, 7);
        let mut distinct = std::collections::HashSet::new();
        for t in &tris {
            for v in t {
                assert!((v.normal.length() - 1.0).abs() < 1e-5);
                distinct.insert((v.normal.x.to_bits(), v.normal.z.to_bits()));
            }
        }
        assert!(distinct.len() > 5, "normals should vary");
    }

    #[test]
    fn grids_are_deterministic() {
        let a = floor(0.0, 8.0, 8.0, 3, 2.0, 0.1, 11);
        let b = floor(0.0, 8.0, 8.0, 3, 2.0, 0.1, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn uv_covers_tile_range() {
        let tris = floor(0.0, 8.0, 8.0, 2, 4.0, 0.0, 0);
        let mut max_u = 0.0f32;
        for t in &tris {
            for v in t {
                max_u = max_u.max(v.uv.x);
            }
        }
        assert!((max_u - 4.0).abs() < 1e-5);
    }

    #[test]
    fn wall_normals_face_inward() {
        let left = wall(-5.0, 0.0, 4.0, 20.0, 2, 2.0, 0.0, 0);
        assert_eq!(left[0][0].normal, Vec3::X);
        let right = wall(5.0, 0.0, 4.0, 20.0, 2, 2.0, 0.0, 0);
        assert_eq!(right[0][0].normal, -Vec3::X);
    }

    #[test]
    fn facing_quad_spans_center() {
        let tris = facing_quad(Vec3::new(0.0, 1.0, -5.0), 2.0, 1.0, 0.0, 0);
        assert_eq!(tris.len(), 8);
        let xs: Vec<f32> = tris.iter().flatten().map(|v| v.position.x).collect();
        assert!(xs.iter().cloned().fold(f32::MAX, f32::min) <= -2.0 + 1e-5);
        assert!(xs.iter().cloned().fold(f32::MIN, f32::max) >= 2.0 - 1e-5);
    }
}
