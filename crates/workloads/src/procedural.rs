//! Procedural texture synthesis.
//!
//! Game-surface-like textures generated deterministically: checkerboards,
//! bricks, value noise, and speckled stone. High-frequency content
//! matters — a flat texture would hide filtering-quality differences, so
//! PSNR in Figs. 15–16 would read as a false 99 dB everywhere.

use pimgfx_texture::TextureImage;
use pimgfx_types::{Rgba, TinyRng};

/// Texture families the scene generators draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextureKind {
    /// High-contrast checkerboard (worst case for aliasing).
    Checker,
    /// Brick courses with mortar lines.
    Brick,
    /// Band-limited value noise (organic surfaces).
    Noise,
    /// Speckled stone with veins.
    Stone,
}

impl TextureKind {
    /// All families, in generation rotation order.
    pub const ALL: [TextureKind; 4] = [
        TextureKind::Checker,
        TextureKind::Brick,
        TextureKind::Noise,
        TextureKind::Stone,
    ];
}

/// Generates a `size`×`size` texture of the given family, deterministic
/// in `seed`.
///
/// # Panics
///
/// Panics if `size` is zero.
///
/// # Examples
///
/// ```
/// use pimgfx_workloads::procedural::{generate, TextureKind};
/// let a = generate(TextureKind::Brick, 64, 7);
/// let b = generate(TextureKind::Brick, 64, 7);
/// assert_eq!(a.texel(10, 10), b.texel(10, 10), "deterministic in the seed");
/// ```
pub fn generate(kind: TextureKind, size: u32, seed: u64) -> TextureImage {
    assert!(size > 0, "texture size must be nonzero");
    match kind {
        TextureKind::Checker => checker(size, seed),
        TextureKind::Brick => brick(size, seed),
        TextureKind::Noise => noise(size, seed),
        TextureKind::Stone => stone(size, seed),
    }
}

fn checker(size: u32, seed: u64) -> TextureImage {
    let mut rng = TinyRng::seed_from_u64(seed);
    let cell = (size / 8).max(1);
    let a = random_color(&mut rng, 0.7, 1.0);
    let b = random_color(&mut rng, 0.0, 0.3);
    TextureImage::from_fn(size, size, |x, y| {
        if (x / cell + y / cell).is_multiple_of(2) {
            a
        } else {
            b
        }
    })
}

fn brick(size: u32, seed: u64) -> TextureImage {
    let mut rng = TinyRng::seed_from_u64(seed ^ 0xB41C);
    let brick_h = (size / 8).max(2);
    let brick_w = (size / 4).max(4);
    let mortar = Rgba::gray(0.75);
    let base = random_color(&mut rng, 0.3, 0.6);
    TextureImage::from_fn(size, size, |x, y| {
        let row = y / brick_h;
        let offset = if row.is_multiple_of(2) {
            0
        } else {
            brick_w / 2
        };
        let in_mortar_y = y % brick_h < 1;
        let in_mortar_x = (x + offset) % brick_w < 1;
        if in_mortar_x || in_mortar_y {
            mortar
        } else {
            // Per-brick tint varies deterministically with position.
            let tint = hash2(x / brick_w, row, seed) * 0.12;
            Rgba::new(
                (base.r + tint).min(1.0),
                (base.g + tint * 0.5).min(1.0),
                (base.b + tint * 0.3).min(1.0),
                1.0,
            )
        }
    })
}

fn noise(size: u32, seed: u64) -> TextureImage {
    // Two-octave value noise on an 8x8 then 16x16 lattice.
    let mut rng = TinyRng::seed_from_u64(seed ^ 0x0153);
    let lattice8: Vec<f32> = (0..81).map(|_| rng.next_f32()).collect();
    let lattice16: Vec<f32> = (0..289).map(|_| rng.next_f32()).collect();
    let tint = random_color(&mut rng, 0.4, 1.0);
    let sample = |lat: &[f32], n: u32, u: f32, v: f32| -> f32 {
        let fu = u * n as f32;
        let fv = v * n as f32;
        let iu = fu.floor() as usize;
        let iv = fv.floor() as usize;
        let du = fu.fract();
        let dv = fv.fract();
        let at = |i: usize, j: usize| lat[j * (n as usize + 1) + i];
        let top = at(iu, iv) * (1.0 - du) + at(iu + 1, iv) * du;
        let bot = at(iu, iv + 1) * (1.0 - du) + at(iu + 1, iv + 1) * du;
        top * (1.0 - dv) + bot * dv
    };
    TextureImage::from_fn(size, size, |x, y| {
        let u = x as f32 / size as f32;
        let v = y as f32 / size as f32;
        let n = 0.65 * sample(&lattice8, 8, u, v) + 0.35 * sample(&lattice16, 16, u, v);
        Rgba::new(tint.r * n, tint.g * n, tint.b * n, 1.0)
    })
}

fn stone(size: u32, seed: u64) -> TextureImage {
    let mut rng = TinyRng::seed_from_u64(seed ^ 0x570E);
    let base = random_color(&mut rng, 0.35, 0.55);
    TextureImage::from_fn(size, size, |x, y| {
        // Speckle at 4-texel granularity with modest amplitude: visible
        // texture without per-texel white noise (which would make any
        // filtering approximation look catastrophic).
        let speckle = hash2(x / 4, y / 4, seed) * 0.08;
        // Diagonal veins.
        let vein = if (x + 2 * y) % (size / 4).max(3) == 0 {
            -0.15
        } else {
            0.0
        };
        let v = (base.r + speckle + vein).clamp(0.0, 1.0);
        Rgba::new(v, v * 0.95, v * 0.9, 1.0)
    })
}

fn random_color(rng: &mut TinyRng, lo: f32, hi: f32) -> Rgba {
    Rgba::new(
        rng.gen_range_f32(lo, hi),
        rng.gen_range_f32(lo, hi),
        rng.gen_range_f32(lo, hi),
        1.0,
    )
}

/// A cheap deterministic 2D hash in `[0, 1)`.
fn hash2(x: u32, y: u32, seed: u64) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(x).wrapping_mul(0x85EB_CA6B))
        .wrapping_add(u64::from(y).wrapping_mul(0xC2B2_AE35));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h & 0xFFFF) as f32 / 65536.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_and_are_deterministic() {
        for (i, kind) in TextureKind::ALL.into_iter().enumerate() {
            let a = generate(kind, 32, i as u64);
            let b = generate(kind, 32, i as u64);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_eq!(a.width(), 32);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(TextureKind::Noise, 32, 1);
        let b = generate(TextureKind::Noise, 32, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn textures_have_contrast() {
        // Filtering-quality metrics need non-flat content.
        for kind in TextureKind::ALL {
            let img = generate(kind, 64, 42);
            let mut min = 1.0f32;
            let mut max = 0.0f32;
            for y in 0..64 {
                for x in 0..64 {
                    let l = img.texel(x, y).r;
                    min = min.min(l);
                    max = max.max(l);
                }
            }
            assert!(max - min > 0.1, "{kind:?} is too flat: {min}..{max}");
        }
    }

    #[test]
    fn hash2_is_uniform_enough() {
        let mut sum = 0.0;
        for x in 0..32 {
            for y in 0..32 {
                sum += hash2(x, y, 7);
            }
        }
        let mean = sum / 1024.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_panics() {
        let _ = generate(TextureKind::Checker, 0, 0);
    }
}
