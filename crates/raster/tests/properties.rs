//! Property-based tests for the geometry/rasterization invariants.

// Compiled only under `--features proptest-tests` (non-default): the
// workspace carries no external dependencies so that tier-1 CI runs
// fully offline. To run this suite, vendor `proptest` locally, add it
// to this crate's [dev-dependencies], and enable the feature (see
// README "Contributing").
#![cfg(feature = "proptest-tests")]

use pimgfx_raster::{clip_triangle, Camera, ClipVertex, Rasterizer, TriangleSetup, Vertex};
use pimgfx_types::{Vec2, Vec3, Vec4};
use proptest::prelude::*;

fn arb_clip_vertex() -> impl Strategy<Value = ClipVertex> {
    (
        -3.0f32..3.0,
        -3.0f32..3.0,
        -3.0f32..3.0,
        0.2f32..4.0,
        0.0f32..1.0,
        0.0f32..1.0,
        0.0f32..1.0,
    )
        .prop_map(|(x, y, z, w, u, v, cos)| {
            ClipVertex::new(Vec4::new(x, y, z, w), Vec2::new(u, v), cos)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clipping output always satisfies every frustum inequality.
    #[test]
    fn clipped_vertices_are_inside_the_frustum(
        a in arb_clip_vertex(),
        b in arb_clip_vertex(),
        c in arb_clip_vertex(),
    ) {
        for tri in clip_triangle([a, b, c]) {
            for v in tri {
                let eps = 1e-3 * v.clip.w.abs().max(1.0);
                prop_assert!(v.clip.x >= -v.clip.w - eps && v.clip.x <= v.clip.w + eps);
                prop_assert!(v.clip.y >= -v.clip.w - eps && v.clip.y <= v.clip.w + eps);
                prop_assert!(v.clip.z >= -v.clip.w - eps && v.clip.z <= v.clip.w + eps);
                prop_assert!(v.clip.w > 0.0, "clipped vertex must have positive w");
            }
        }
    }

    /// Clipping a fully-inside triangle is the identity; a fully-outside
    /// one yields nothing.
    #[test]
    fn clip_preserves_inside_triangles(
        xs in prop::collection::vec(-0.9f32..0.9, 6),
    ) {
        let v = |x: f32, y: f32| ClipVertex::new(Vec4::new(x, y, 0.0, 1.0), Vec2::ZERO, 1.0);
        let tri = [v(xs[0], xs[1]), v(xs[2], xs[3]), v(xs[4], xs[5])];
        let out = clip_triangle(tri);
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0][0].clip, tri[0].clip);
    }

    /// Barycentric coordinates sum to one everywhere.
    #[test]
    fn barycentrics_sum_to_one(
        a in arb_clip_vertex(),
        b in arb_clip_vertex(),
        c in arb_clip_vertex(),
        px in 0i32..128,
        py in 0i32..128,
    ) {
        if let Some(setup) = TriangleSetup::new(&[a, b, c], 128, 128) {
            let (w0, w1, w2) = setup.barycentric(px, py);
            prop_assert!((w0 + w1 + w2 - 1.0).abs() < 1e-3);
        }
    }

    /// Every emitted fragment lies in the viewport, inside the
    /// triangle's bounding box, with interpolants in range.
    #[test]
    fn fragments_are_well_formed(
        ax in -2.0f32..2.0, ay in -2.0f32..2.0,
        bx in -2.0f32..2.0, by in -2.0f32..2.0,
        cx in -2.0f32..2.0, cy in -2.0f32..2.0,
    ) {
        let camera = Camera::look_at(
            Vec3::new(0.0, 0.0, 4.0),
            Vec3::ZERO,
            Vec3::Y,
            1.0,
            1.0,
        );
        let tri = [
            Vertex::new(Vec3::new(ax, ay, 0.0), Vec3::Z, Vec2::new(0.0, 0.0)),
            Vertex::new(Vec3::new(bx, by, 0.0), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(cx, cy, 0.0), Vec3::Z, Vec2::new(0.0, 1.0)),
        ];
        let mut raster = Rasterizer::new(96, 96);
        for f in raster.rasterize(&camera, &tri) {
            prop_assert!(f.x < 96 && f.y < 96);
            prop_assert!((0.0..=1.0).contains(&f.depth));
            prop_assert!(f.camera_angle.as_f32() >= 0.0);
            prop_assert!(f.camera_angle.as_f32() <= std::f32::consts::FRAC_PI_2 + 1e-3);
            // uv inside (slightly padded) unit triangle hull.
            prop_assert!(f.uv.x >= -0.05 && f.uv.x <= 1.05);
            prop_assert!(f.uv.y >= -0.05 && f.uv.y <= 1.05);
        }
    }

    /// Early Z is order-independent for opaque geometry: rasterizing
    /// two triangles in either order yields the same surviving depth at
    /// every pixel.
    #[test]
    fn depth_result_is_draw_order_independent(z1 in -1.5f32..1.5, z2 in -1.5f32..1.5) {
        let camera = Camera::look_at(Vec3::new(0.0, 0.0, 4.0), Vec3::ZERO, Vec3::Y, 1.0, 1.0);
        let tri = |z: f32| {
            [
                Vertex::new(Vec3::new(-1.0, -1.0, z), Vec3::Z, Vec2::new(0.0, 0.0)),
                Vertex::new(Vec3::new(1.0, -1.0, z), Vec3::Z, Vec2::new(1.0, 0.0)),
                Vertex::new(Vec3::new(0.0, 1.0, z), Vec3::Z, Vec2::new(0.5, 1.0)),
            ]
        };
        let depths = |first: f32, second: f32| {
            let mut r = Rasterizer::new(48, 48);
            r.rasterize(&camera, &tri(first));
            r.rasterize(&camera, &tri(second));
            (0..48)
                .flat_map(|y| (0..48).map(move |x| (x, y)))
                .map(|(x, y)| r.depth_buffer().depth(x, y).to_bits())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(depths(z1, z2), depths(z2, z1));
    }
}
