//! Geometry processing and tile-based rasterization for the `pim-render`
//! GPU simulator.
//!
//! This crate implements the first two stages of the paper's baseline GPU
//! (§II-A): **geometry processing** (vertex transform, primitive assembly,
//! frustum clipping) and **rasterization** (triangle setup, tile-based
//! scan conversion with early and hierarchical Z, perspective-correct
//! attribute interpolation). Its output is fragments carrying everything
//! texture filtering needs: normalized texture coordinates, their
//! screen-space derivatives, and the camera angle of the surface — the
//! quantity A-TFIM tags texture-cache lines with.
//!
//! # Examples
//!
//! ```
//! use pimgfx_raster::{Camera, Rasterizer, Vertex};
//! use pimgfx_types::{Rect, Vec2, Vec3};
//!
//! let camera = Camera::look_at(
//!     Vec3::new(0.0, 0.0, 3.0),
//!     Vec3::ZERO,
//!     Vec3::Y,
//!     std::f32::consts::FRAC_PI_3,
//!     64.0 / 48.0,
//! );
//! let mut raster = Rasterizer::new(64, 48);
//! let tri = [
//!     Vertex::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::Z, Vec2::new(0.0, 0.0)),
//!     Vertex::new(Vec3::new(1.0, -1.0, 0.0), Vec3::Z, Vec2::new(1.0, 0.0)),
//!     Vertex::new(Vec3::new(0.0, 1.0, 0.0), Vec3::Z, Vec2::new(0.5, 1.0)),
//! ];
//! let frags = raster.rasterize(&camera, &tri);
//! assert!(!frags.is_empty(), "an on-screen triangle produces fragments");
//! ```

// --- lint wall (checked byte-for-byte by `cargo xtask lint`) ---
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::dbg_macro, clippy::print_stdout, clippy::print_stderr)]

pub mod camera;
pub mod clip;
pub mod fragment;
pub mod raster;
pub mod setup;
pub mod vertex;
pub mod zbuffer;

pub use camera::Camera;
pub use clip::clip_triangle;
pub use fragment::{Fragment, FragmentTile};
pub use raster::{RasterStats, Rasterizer};
pub use setup::TriangleSetup;
pub use vertex::{ClipVertex, Vertex};
pub use zbuffer::{DepthBuffer, ZOutcome};
