//! Camera and vertex transformation.

use crate::vertex::{ClipVertex, Vertex};
use pimgfx_types::{Mat4, Vec3, Vec4};

/// A perspective camera: view + projection transforms plus the eye
/// position needed for per-vertex view angles.
///
/// # Examples
///
/// ```
/// use pimgfx_raster::{Camera, Vertex};
/// use pimgfx_types::{Vec2, Vec3};
///
/// let cam = Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 1.0, 1.0);
/// let v = Vertex::new(Vec3::ZERO, Vec3::Z, Vec2::ZERO);
/// let cv = cam.transform_vertex(&v);
/// assert!(cv.clip.w > 0.0, "a point in front of the camera has positive w");
/// assert!((cv.view_cos - 1.0).abs() < 1e-5, "normal faces the camera head-on");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    eye: Vec3,
    view: Mat4,
    proj: Mat4,
    view_proj: Mat4,
}

impl Camera {
    /// Builds a camera from explicit matrices.
    pub fn new(eye: Vec3, view: Mat4, proj: Mat4) -> Self {
        Self {
            eye,
            view,
            proj,
            view_proj: proj * view,
        }
    }

    /// Reconstructs a camera from its eye position and combined
    /// view-projection matrix — the two pieces the pipeline actually
    /// consumes. Used by trace deserialization.
    pub fn from_view_proj(eye: Vec3, view_proj: Mat4) -> Self {
        Self {
            eye,
            view: Mat4::IDENTITY,
            proj: view_proj,
            view_proj,
        }
    }

    /// Convenience constructor: right-handed look-at with a perspective
    /// projection (`fov_y` radians, near 0.1, far 1000).
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, fov_y: f32, aspect: f32) -> Self {
        let view = Mat4::look_at(eye, target, up);
        let proj = Mat4::perspective(fov_y, aspect, 0.1, 1000.0);
        Self::new(eye, view, proj)
    }

    /// The camera position.
    pub fn eye(&self) -> Vec3 {
        self.eye
    }

    /// The combined view-projection matrix.
    pub fn view_proj(&self) -> &Mat4 {
        &self.view_proj
    }

    /// Runs the vertex shader: transform to clip space and compute the
    /// view-angle cosine used for anisotropy and A-TFIM angle tags.
    pub fn transform_vertex(&self, v: &Vertex) -> ClipVertex {
        let clip = self.view_proj.transform(Vec4::from_point(v.position));
        let to_eye = (self.eye - v.position).normalized();
        let view_cos = v.normal.normalized().dot(to_eye).abs().clamp(0.0, 1.0);
        ClipVertex::new(clip, v.uv, view_cos)
    }

    /// Transforms a whole triangle.
    pub fn transform_triangle(&self, tri: &[Vertex; 3]) -> [ClipVertex; 3] {
        [
            self.transform_vertex(&tri[0]),
            self.transform_vertex(&tri[1]),
            self.transform_vertex(&tri[2]),
        ]
    }

    /// Maps a clip-space vertex to screen space for a `width`×`height`
    /// viewport: returns `(x, y, z, 1/w)` with `x, y` in pixels, `z` in
    /// `[0, 1]` (0 = near), and the reciprocal w used for
    /// perspective-correct interpolation.
    ///
    /// # Panics
    ///
    /// Debug-asserts `w > 0` (the clipper must run first).
    pub fn to_screen(clip: Vec4, width: u32, height: u32) -> (f32, f32, f32, f32) {
        debug_assert!(clip.w > 0.0, "to_screen requires clipped vertices");
        let inv_w = 1.0 / clip.w;
        let ndc_x = clip.x * inv_w;
        let ndc_y = clip.y * inv_w;
        let ndc_z = clip.z * inv_w;
        let x = (ndc_x * 0.5 + 0.5) * width as f32;
        // Screen y grows downward.
        let y = (0.5 - ndc_y * 0.5) * height as f32;
        let z = ndc_z * 0.5 + 0.5;
        (x, y, z, inv_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimgfx_types::Vec2;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 1.0, 1.0)
    }

    #[test]
    fn center_point_projects_to_screen_center() {
        let c = cam();
        let v = Vertex::new(Vec3::ZERO, Vec3::Z, Vec2::ZERO);
        let cv = c.transform_vertex(&v);
        let (x, y, z, _) = Camera::to_screen(cv.clip, 640, 480);
        assert!((x - 320.0).abs() < 1e-2);
        assert!((y - 240.0).abs() < 1e-2);
        assert!(z > 0.0 && z < 1.0);
    }

    #[test]
    fn grazing_surface_has_small_view_cos() {
        let c = cam();
        // Normal perpendicular to the view direction.
        let v = Vertex::new(Vec3::ZERO, Vec3::Y, Vec2::ZERO);
        let cv = c.transform_vertex(&v);
        assert!(cv.view_cos < 1e-5);
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let c = cam();
        let near = c.transform_vertex(&Vertex::new(Vec3::new(0.0, 0.0, 2.0), Vec3::Z, Vec2::ZERO));
        let far = c.transform_vertex(&Vertex::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z, Vec2::ZERO));
        let (_, _, zn, _) = Camera::to_screen(near.clip, 64, 64);
        let (_, _, zf, _) = Camera::to_screen(far.clip, 64, 64);
        assert!(zn < zf);
    }

    #[test]
    fn screen_y_grows_downward() {
        let c = cam();
        let up = c.transform_vertex(&Vertex::new(Vec3::new(0.0, 1.0, 0.0), Vec3::Z, Vec2::ZERO));
        let (_, y_up, _, _) = Camera::to_screen(up.clip, 640, 480);
        assert!(y_up < 240.0, "world +y is screen up (smaller y)");
    }

    #[test]
    fn transform_triangle_maps_all_three() {
        let c = cam();
        let tri = [
            Vertex::new(Vec3::new(-1.0, 0.0, 0.0), Vec3::Z, Vec2::ZERO),
            Vertex::new(Vec3::new(1.0, 0.0, 0.0), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(0.0, 1.0, 0.0), Vec3::Z, Vec2::new(0.5, 1.0)),
        ];
        let out = c.transform_triangle(&tri);
        assert!(out.iter().all(|v| v.clip.w > 0.0));
        assert_eq!(out[2].uv, Vec2::new(0.5, 1.0));
    }
}
