//! Vertex types flowing through the geometry stage.

use pimgfx_types::{Vec2, Vec3, Vec4};

/// An input vertex as fetched from the simulated vertex buffer.
///
/// # Examples
///
/// ```
/// use pimgfx_raster::Vertex;
/// use pimgfx_types::{Vec2, Vec3};
/// let v = Vertex::new(Vec3::ZERO, Vec3::Z, Vec2::new(0.5, 0.5));
/// assert_eq!(v.uv.x, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Object/world-space position.
    pub position: Vec3,
    /// Surface normal (unit length expected).
    pub normal: Vec3,
    /// Texture coordinates in `[0, 1]` texture space.
    pub uv: Vec2,
}

/// Bytes one vertex occupies in the simulated vertex buffer
/// (position + normal + uv as f32 = 8 × 4 bytes).
pub const VERTEX_BYTES: u64 = 32;

impl Vertex {
    /// Creates a vertex.
    pub const fn new(position: Vec3, normal: Vec3, uv: Vec2) -> Self {
        Self {
            position,
            normal,
            uv,
        }
    }
}

/// A vertex after the vertex shader: clip-space position plus the
/// attributes rasterization interpolates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipVertex {
    /// Position in clip space (before perspective division).
    pub clip: Vec4,
    /// Texture coordinates.
    pub uv: Vec2,
    /// |cos θ| between the surface normal and the view direction at this
    /// vertex; 1 = viewed head-on, 0 = grazing. Interpolated per fragment
    /// to give each pixel its camera angle (A-TFIM, §V-C).
    pub view_cos: f32,
}

impl ClipVertex {
    /// Creates a clip-space vertex.
    pub const fn new(clip: Vec4, uv: Vec2, view_cos: f32) -> Self {
        Self { clip, uv, view_cos }
    }

    /// Linear interpolation in clip space (used by the clipper; clip-space
    /// attributes interpolate linearly before perspective division).
    pub fn lerp(self, rhs: Self, t: f32) -> Self {
        Self {
            clip: self.clip.lerp(rhs.clip, t),
            uv: self.uv.lerp(rhs.uv, t),
            view_cos: self.view_cos + (rhs.view_cos - self.view_cos) * t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_vertex_lerp_endpoints() {
        let a = ClipVertex::new(Vec4::new(0.0, 0.0, 0.0, 1.0), Vec2::ZERO, 1.0);
        let b = ClipVertex::new(Vec4::new(2.0, 2.0, 2.0, 1.0), Vec2::ONE, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert_eq!(m.clip.x, 1.0);
        assert_eq!(m.uv, Vec2::new(0.5, 0.5));
        assert_eq!(m.view_cos, 0.5);
    }

    #[test]
    fn vertex_bytes_matches_layout() {
        // 3 (pos) + 3 (normal) + 2 (uv) floats.
        assert_eq!(VERTEX_BYTES, 8 * 4);
    }
}
