//! Fragments and fragment tiles.

use pimgfx_types::{Radians, TextureId, TileCoord, Vec2};

/// One shaded pixel candidate produced by the rasterizer.
///
/// Carries everything the fragment stage and texture units need: screen
/// position, depth, perspective-correct texture coordinates with
/// screen-space derivatives, and the camera angle of the surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// Pixel column.
    pub x: u32,
    /// Pixel row.
    pub y: u32,
    /// Depth in `[0, 1]` (0 = near plane).
    pub depth: f32,
    /// Texture coordinates (normalized).
    pub uv: Vec2,
    /// ∂uv/∂x in normalized texture units per pixel.
    pub duv_dx: Vec2,
    /// ∂uv/∂y in normalized texture units per pixel.
    pub duv_dy: Vec2,
    /// Camera angle of the surface at this pixel (0 = head-on,
    /// π/2 = grazing), the A-TFIM cache-tag quantity.
    pub camera_angle: Radians,
    /// The texture bound to the draw that produced this fragment.
    pub texture: TextureId,
}

impl Fragment {
    /// The tile this fragment belongs to, for a given tile edge.
    pub fn tile(&self, tile_px: u32) -> TileCoord {
        TileCoord::new(self.x / tile_px, self.y / tile_px)
    }
}

/// A group of fragments belonging to one screen tile — the unit of work
/// dispatched to a unified-shader cluster (Table I uses 16×16 tiles).
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentTile {
    /// Tile coordinates in tile units.
    pub coord: TileCoord,
    /// The covered fragments.
    pub fragments: Vec<Fragment>,
}

impl FragmentTile {
    /// Groups fragments into tiles of `tile_px` pixels, in row-major tile
    /// order; fragment order within a tile is preserved.
    pub fn group(fragments: Vec<Fragment>, tile_px: u32) -> Vec<FragmentTile> {
        assert!(tile_px > 0, "tile size must be positive");
        let mut tiles: Vec<FragmentTile> = Vec::new();
        let mut index: pimgfx_types::FxHashMap<TileCoord, usize> =
            pimgfx_types::FxHashMap::default();
        for f in fragments {
            let coord = f.tile(tile_px);
            let at = *index.entry(coord).or_insert_with(|| {
                tiles.push(FragmentTile {
                    coord,
                    fragments: Vec::new(),
                });
                tiles.len() - 1
            });
            tiles[at].fragments.push(f);
        }
        tiles.sort_by_key(|t| (t.coord.ty, t.coord.tx));
        tiles
    }

    /// Number of fragments in the tile.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True when the tile holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(x: u32, y: u32) -> Fragment {
        Fragment {
            x,
            y,
            depth: 0.5,
            uv: Vec2::ZERO,
            duv_dx: Vec2::ZERO,
            duv_dy: Vec2::ZERO,
            camera_angle: Radians::ZERO,
            texture: TextureId::new(0),
        }
    }

    #[test]
    fn fragment_tile_assignment() {
        assert_eq!(frag(0, 0).tile(16), TileCoord::new(0, 0));
        assert_eq!(frag(15, 15).tile(16), TileCoord::new(0, 0));
        assert_eq!(frag(16, 0).tile(16), TileCoord::new(1, 0));
        assert_eq!(frag(0, 16).tile(16), TileCoord::new(0, 1));
    }

    #[test]
    fn group_partitions_and_orders_tiles() {
        let frags = vec![frag(20, 20), frag(1, 1), frag(2, 2), frag(17, 1)];
        let tiles = FragmentTile::group(frags, 16);
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[0].coord, TileCoord::new(0, 0));
        assert_eq!(tiles[0].len(), 2);
        assert_eq!(tiles[1].coord, TileCoord::new(1, 0));
        assert_eq!(tiles[2].coord, TileCoord::new(1, 1));
    }

    #[test]
    fn group_preserves_intra_tile_order() {
        let frags = vec![frag(1, 1), frag(2, 2), frag(3, 3)];
        let tiles = FragmentTile::group(frags, 16);
        assert_eq!(tiles[0].fragments[0].x, 1);
        assert_eq!(tiles[0].fragments[2].x, 3);
    }

    #[test]
    fn empty_input_yields_no_tiles() {
        assert!(FragmentTile::group(Vec::new(), 16).is_empty());
    }
}
