//! Frustum clipping in clip space (Sutherland–Hodgman).
//!
//! Triangles are clipped against the six frustum planes before
//! perspective division; clipping can split a triangle into up to several
//! sub-triangles (the paper's clipping stage "removes non-visible
//! triangles or generates sub-triangles", §II-A).

use crate::vertex::ClipVertex;
use pimgfx_types::Vec4;

/// The six clip-space half-spaces `dot(plane, v) >= 0`.
const PLANES: [Vec4; 6] = [
    Vec4::new(1.0, 0.0, 0.0, 1.0),  // x >= -w  (left)
    Vec4::new(-1.0, 0.0, 0.0, 1.0), // x <=  w  (right)
    Vec4::new(0.0, 1.0, 0.0, 1.0),  // y >= -w  (bottom)
    Vec4::new(0.0, -1.0, 0.0, 1.0), // y <=  w  (top)
    Vec4::new(0.0, 0.0, 1.0, 1.0),  // z >= -w  (near)
    Vec4::new(0.0, 0.0, -1.0, 1.0), // z <=  w  (far)
];

fn signed_dist(plane: Vec4, v: &ClipVertex) -> f32 {
    plane.dot(v.clip)
}

/// Clips one polygon against one plane.
fn clip_against(plane: Vec4, poly: &[ClipVertex]) -> Vec<ClipVertex> {
    let mut out = Vec::with_capacity(poly.len() + 1);
    for i in 0..poly.len() {
        let a = poly[i];
        let b = poly[(i + 1) % poly.len()];
        let da = signed_dist(plane, &a);
        let db = signed_dist(plane, &b);
        let a_in = da >= 0.0;
        let b_in = db >= 0.0;
        if a_in {
            out.push(a);
        }
        if a_in != b_in {
            // Edge crosses the plane; emit the intersection.
            let t = da / (da - db);
            out.push(a.lerp(b, t));
        }
    }
    out
}

/// Clips a triangle against the view frustum; returns zero or more
/// triangles (a fan over the clipped polygon).
///
/// # Examples
///
/// ```
/// use pimgfx_raster::{clip_triangle, ClipVertex};
/// use pimgfx_types::{Vec2, Vec4};
///
/// // Fully inside: passes through unchanged as one triangle.
/// let v = |x: f32, y: f32| ClipVertex::new(Vec4::new(x, y, 0.0, 1.0), Vec2::ZERO, 1.0);
/// let tris = clip_triangle([v(-0.5, -0.5), v(0.5, -0.5), v(0.0, 0.5)]);
/// assert_eq!(tris.len(), 1);
///
/// // Fully outside (behind the near plane): culled.
/// let behind = |x: f32| ClipVertex::new(Vec4::new(x, 0.0, -2.0, 1.0), Vec2::ZERO, 1.0);
/// assert!(clip_triangle([behind(-0.5), behind(0.5), behind(0.0)]).is_empty());
/// ```
pub fn clip_triangle(tri: [ClipVertex; 3]) -> Vec<[ClipVertex; 3]> {
    let mut poly: Vec<ClipVertex> = tri.to_vec();
    for plane in PLANES {
        if poly.is_empty() {
            return Vec::new();
        }
        poly = clip_against(plane, &poly);
    }
    if poly.len() < 3 {
        return Vec::new();
    }
    // Triangulate the convex polygon as a fan.
    (1..poly.len() - 1)
        .map(|i| [poly[0], poly[i], poly[i + 1]])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimgfx_types::Vec2;

    fn v(x: f32, y: f32, z: f32, w: f32) -> ClipVertex {
        ClipVertex::new(Vec4::new(x, y, z, w), Vec2::new(x, y), 1.0)
    }

    #[test]
    fn inside_triangle_is_unchanged() {
        let tri = [
            v(-0.5, -0.5, 0.0, 1.0),
            v(0.5, -0.5, 0.0, 1.0),
            v(0.0, 0.5, 0.0, 1.0),
        ];
        let out = clip_triangle(tri);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0].clip, tri[0].clip);
    }

    #[test]
    fn outside_triangle_is_culled() {
        // Entirely to the right of x = w.
        let tri = [
            v(2.0, 0.0, 0.0, 1.0),
            v(3.0, 0.0, 0.0, 1.0),
            v(2.5, 1.0, 0.0, 1.0),
        ];
        assert!(clip_triangle(tri).is_empty());
    }

    #[test]
    fn straddling_triangle_is_split() {
        // One vertex far right of the frustum: clipping yields a quad = 2 tris.
        let tri = [
            v(-0.5, -0.5, 0.0, 1.0),
            v(3.0, 0.0, 0.0, 1.0),
            v(-0.5, 0.5, 0.0, 1.0),
        ];
        let out = clip_triangle(tri);
        assert_eq!(out.len(), 2);
        // All emitted vertices respect x <= w.
        for t in &out {
            for cv in t {
                assert!(cv.clip.x <= cv.clip.w + 1e-5);
            }
        }
    }

    #[test]
    fn near_plane_clip_interpolates_attributes() {
        // Edge from z=0 (inside) to z=-2 (behind near plane), w=1.
        let a = ClipVertex::new(Vec4::new(0.0, 0.0, 0.0, 1.0), Vec2::new(0.0, 0.0), 1.0);
        let b = ClipVertex::new(Vec4::new(0.0, 0.0, -2.0, 1.0), Vec2::new(1.0, 1.0), 0.0);
        let c = ClipVertex::new(Vec4::new(0.5, 0.0, 0.0, 1.0), Vec2::new(0.0, 1.0), 1.0);
        let out = clip_triangle([a, b, c]);
        assert!(!out.is_empty());
        // Every output vertex satisfies z >= -w, and interpolated uv stays
        // within the hull of the inputs.
        for t in &out {
            for cv in t {
                assert!(cv.clip.z >= -cv.clip.w - 1e-5);
                assert!((0.0..=1.0).contains(&cv.uv.x));
                assert!((0.0..=1.0).contains(&cv.view_cos));
            }
        }
    }

    #[test]
    fn clip_count_is_bounded() {
        // A triangle crossing several planes still yields a small fan.
        let tri = [
            v(-3.0, -3.0, 0.0, 1.0),
            v(3.0, -3.0, 0.0, 1.0),
            v(0.0, 3.0, 0.0, 1.0),
        ];
        let out = clip_triangle(tri);
        assert!(!out.is_empty());
        assert!(out.len() <= 7, "convex clip of a triangle against 6 planes");
    }

    #[test]
    fn degenerate_output_is_dropped() {
        // Triangle exactly on the right plane edge-on.
        let tri = [
            v(1.0, -1.0, 0.0, 1.0),
            v(1.0, 1.0, 0.0, 1.0),
            v(1.0, 0.0, 0.0, 1.0),
        ];
        let out = clip_triangle(tri);
        // Zero-area sliver may survive as polygons but never panics.
        for t in out {
            assert_eq!(t.len(), 3);
        }
    }
}
