//! Depth buffer with early Z and a hierarchical-Z tile pyramid.
//!
//! The baseline architecture supports "tiling-based scanning and early Z
//! test to improve cache and memory access locality" (§II-A). The
//! hierarchical tier keeps one conservative maximum depth per tile so
//! whole tiles of an occluded triangle can be rejected without touching
//! per-pixel storage.

use pimgfx_types::Rect;

/// Outcome of a depth test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZOutcome {
    /// Fragment is closer than the stored depth; buffer updated.
    Pass,
    /// Fragment is occluded.
    Fail,
}

/// A per-pixel depth buffer plus a per-tile maximum pyramid.
///
/// Depth convention: `0.0` = near plane, `1.0` = far plane, smaller
/// passes.
///
/// # Examples
///
/// ```
/// use pimgfx_raster::{DepthBuffer, ZOutcome};
///
/// let mut z = DepthBuffer::new(32, 32, 16);
/// assert_eq!(z.test_and_update(5, 5, 0.5), ZOutcome::Pass);
/// assert_eq!(z.test_and_update(5, 5, 0.9), ZOutcome::Fail);
/// assert_eq!(z.test_and_update(5, 5, 0.2), ZOutcome::Pass);
/// ```
#[derive(Debug, Clone)]
pub struct DepthBuffer {
    width: u32,
    height: u32,
    tile_px: u32,
    depths: Vec<f32>,
    /// Per-tile maximum stored depth (1.0 when untouched).
    tile_max: Vec<f32>,
    tiles_x: u32,
    tests: u64,
    hiz_rejects: u64,
}

impl DepthBuffer {
    /// Creates a cleared buffer (all depths at the far plane).
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the tile size is zero.
    pub fn new(width: u32, height: u32, tile_px: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be nonzero"
        );
        assert!(tile_px > 0, "tile size must be nonzero");
        let tiles_x = width.div_ceil(tile_px);
        let tiles_y = height.div_ceil(tile_px);
        Self {
            width,
            height,
            tile_px,
            depths: vec![1.0; (width * height) as usize],
            tile_max: vec![1.0; (tiles_x * tiles_y) as usize],
            tiles_x,
            tests: 0,
            hiz_rejects: 0,
        }
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Stored depth at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn depth(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "depth read out of range");
        self.depths[(y * self.width + x) as usize]
    }

    /// Early-Z: tests `depth` against the stored value and updates the
    /// buffer (and the tile maximum — conservatively monotone) on pass.
    pub fn test_and_update(&mut self, x: u32, y: u32, depth: f32) -> ZOutcome {
        assert!(x < self.width && y < self.height, "depth test out of range");
        self.tests += 1;
        let idx = (y * self.width + x) as usize;
        if depth < self.depths[idx] {
            self.depths[idx] = depth;
            ZOutcome::Pass
        } else {
            ZOutcome::Fail
        }
    }

    /// Hierarchical Z: conservatively rejects a triangle for a whole tile
    /// region when its minimum depth cannot beat any stored pixel.
    ///
    /// Callers pass the triangle's screen bbox and min vertex depth;
    /// returns `true` when every overlapped tile's stored maximum is
    /// already closer.
    pub fn hiz_reject(&mut self, bbox: &Rect, tri_min_depth: f32) -> bool {
        for t in bbox.tiles(self.tile_px) {
            if t.tx >= self.tiles_x {
                continue;
            }
            let idx = t.linear_index(self.tiles_x) as usize;
            if idx >= self.tile_max.len() {
                continue;
            }
            if tri_min_depth < self.tile_max[idx] {
                return false;
            }
        }
        self.hiz_rejects += 1;
        true
    }

    /// Recomputes a tile's stored maximum after a batch of updates.
    /// Called per tile by the rasterizer once a triangle finishes a tile.
    pub fn refresh_tile_max(&mut self, tx: u32, ty: u32) {
        let x0 = tx * self.tile_px;
        let y0 = ty * self.tile_px;
        if x0 >= self.width || y0 >= self.height {
            return;
        }
        let x1 = (x0 + self.tile_px).min(self.width);
        let y1 = (y0 + self.tile_px).min(self.height);
        let mut max = 0.0f32;
        for y in y0..y1 {
            for x in x0..x1 {
                max = max.max(self.depths[(y * self.width + x) as usize]);
            }
        }
        let idx = (ty * self.tiles_x + tx) as usize;
        self.tile_max[idx] = max;
    }

    /// `(per-pixel tests, hierarchical rejects)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.tests, self.hiz_rejects)
    }

    /// Clears the buffer to the far plane.
    pub fn clear(&mut self) {
        self.depths.fill(1.0);
        self.tile_max.fill(1.0);
        self.tests = 0;
        self.hiz_rejects = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closer_passes_farther_fails() {
        let mut z = DepthBuffer::new(8, 8, 4);
        assert_eq!(z.test_and_update(0, 0, 0.7), ZOutcome::Pass);
        assert_eq!(z.test_and_update(0, 0, 0.8), ZOutcome::Fail);
        assert_eq!(z.test_and_update(0, 0, 0.6), ZOutcome::Pass);
        assert_eq!(z.depth(0, 0), 0.6);
    }

    #[test]
    fn equal_depth_fails() {
        let mut z = DepthBuffer::new(4, 4, 4);
        z.test_and_update(1, 1, 0.5);
        assert_eq!(z.test_and_update(1, 1, 0.5), ZOutcome::Fail);
    }

    #[test]
    fn hiz_rejects_fully_occluded_region() {
        let mut z = DepthBuffer::new(16, 16, 16);
        // Fill the whole (single) tile with near geometry.
        for y in 0..16 {
            for x in 0..16 {
                z.test_and_update(x, y, 0.1);
            }
        }
        z.refresh_tile_max(0, 0);
        let bbox = Rect::from_size(16, 16);
        assert!(z.hiz_reject(&bbox, 0.5), "triangle behind everything");
        assert!(!z.hiz_reject(&bbox, 0.05), "closer triangle survives");
    }

    #[test]
    fn hiz_is_conservative_on_fresh_buffer() {
        let mut z = DepthBuffer::new(16, 16, 16);
        // Empty buffer: stored max is 1.0, nothing can be rejected.
        assert!(!z.hiz_reject(&Rect::from_size(16, 16), 0.99));
    }

    #[test]
    fn refresh_tile_max_tracks_farthest_pixel() {
        let mut z = DepthBuffer::new(8, 8, 4);
        for y in 0..4 {
            for x in 0..4 {
                z.test_and_update(x, y, 0.3);
            }
        }
        // One pixel stays at the far plane in the second tile row/col.
        z.refresh_tile_max(0, 0);
        assert!(z.hiz_reject(&Rect::new(0, 0, 4, 4), 0.35));
        // A tile never refreshed still holds 1.0 and cannot reject.
        assert!(!z.hiz_reject(&Rect::new(4, 4, 8, 8), 0.35));
    }

    #[test]
    fn clear_resets_state() {
        let mut z = DepthBuffer::new(4, 4, 4);
        z.test_and_update(0, 0, 0.2);
        z.clear();
        assert_eq!(z.depth(0, 0), 1.0);
        assert_eq!(z.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_test_panics() {
        let mut z = DepthBuffer::new(4, 4, 4);
        let _ = z.test_and_update(4, 0, 0.5);
    }

    #[test]
    fn stats_count_tests_and_rejects() {
        let mut z = DepthBuffer::new(16, 16, 16);
        for y in 0..16 {
            for x in 0..16 {
                z.test_and_update(x, y, 0.1);
            }
        }
        z.refresh_tile_max(0, 0);
        z.hiz_reject(&Rect::from_size(16, 16), 0.9);
        let (tests, rejects) = z.stats();
        assert_eq!(tests, 256);
        assert_eq!(rejects, 1);
    }
}
