//! Triangle setup: screen-space edge functions, attribute plane
//! equations, and perspective-correct interpolation gradients.

use crate::camera::Camera;
use crate::vertex::ClipVertex;
use pimgfx_types::{Rect, Vec2};

/// A triangle prepared for scanning: screen coordinates, edge functions,
/// and linear plane equations for `1/w`, `uv/w`, `z`, and `view_cos/w`.
///
/// Perspective-correct interpolation interpolates `a/w` and `1/w`
/// linearly in screen space and divides per fragment; the setup
/// precomputes the screen-space gradients of those linear functions, from
/// which the per-pixel uv derivatives (the texture footprint) follow
/// analytically.
#[derive(Debug, Clone)]
pub struct TriangleSetup {
    /// Screen positions of the three vertices.
    pub screen: [Vec2; 3],
    /// Depth (`z` in `[0, 1]`) at the vertices.
    pub z: [f32; 3],
    /// 1/w at the vertices.
    pub inv_w: [f32; 3],
    /// uv/w at the vertices.
    pub uv_over_w: [Vec2; 3],
    /// view_cos/w at the vertices.
    pub cos_over_w: [f32; 3],
    /// Twice the signed screen-space area.
    pub area2: f32,
    /// Pixel bounding box, clipped to the viewport.
    pub bbox: Rect,
}

impl TriangleSetup {
    /// Prepares a clipped triangle for a `width`×`height` viewport.
    ///
    /// Returns `None` for degenerate (zero-area) or fully off-screen
    /// triangles. Back-facing triangles are *kept* (two-sided rendering)
    /// by flipping the winding, which keeps the workload generators
    /// simple.
    pub fn new(tri: &[ClipVertex; 3], width: u32, height: u32) -> Option<Self> {
        let mut screen = [Vec2::ZERO; 3];
        let mut z = [0.0f32; 3];
        let mut inv_w = [0.0f32; 3];
        for i in 0..3 {
            let (x, y, zz, iw) = Camera::to_screen(tri[i].clip, width, height);
            screen[i] = Vec2::new(x, y);
            z[i] = zz;
            inv_w[i] = iw;
        }

        let mut order = [0usize, 1, 2];
        let e01 = screen[1] - screen[0];
        let e02 = screen[2] - screen[0];
        let mut area2 = e01.cross(e02);
        if area2.abs() < 1e-8 {
            return None;
        }
        if area2 < 0.0 {
            // Flip winding so edge functions are consistently positive
            // inside.
            order = [0, 2, 1];
            area2 = -area2;
        }

        let pick = |i: usize| tri[order[i]];
        let s = [screen[order[0]], screen[order[1]], screen[order[2]]];
        let zz = [z[order[0]], z[order[1]], z[order[2]]];
        let iw = [inv_w[order[0]], inv_w[order[1]], inv_w[order[2]]];
        let uvw = [pick(0).uv * iw[0], pick(1).uv * iw[1], pick(2).uv * iw[2]];
        let cw = [
            pick(0).view_cos * iw[0],
            pick(1).view_cos * iw[1],
            pick(2).view_cos * iw[2],
        ];

        let min = s[0].min(s[1]).min(s[2]);
        let max = s[0].max(s[1]).max(s[2]);
        let bbox = Rect::new(
            min.x.floor() as i32,
            min.y.floor() as i32,
            max.x.ceil() as i32,
            max.y.ceil() as i32,
        )
        .intersect(&Rect::from_size(width, height));
        if bbox.is_empty() {
            return None;
        }

        Some(Self {
            screen: s,
            z: zz,
            inv_w: iw,
            uv_over_w: uvw,
            cos_over_w: cw,
            area2,
            bbox,
        })
    }

    /// Barycentric coordinates of pixel center `(px + 0.5, py + 0.5)`.
    /// All three are ≥ 0 inside the triangle and sum to 1.
    pub fn barycentric(&self, px: i32, py: i32) -> (f32, f32, f32) {
        let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
        let w0 = (self.screen[1] - p).cross(self.screen[2] - p) / self.area2;
        let w1 = (self.screen[2] - p).cross(self.screen[0] - p) / self.area2;
        let w2 = 1.0 - w0 - w1;
        (w0, w1, w2)
    }

    /// True when the barycentric triple lies inside the triangle.
    pub fn inside(b: (f32, f32, f32)) -> bool {
        b.0 >= 0.0 && b.1 >= 0.0 && b.2 >= 0.0
    }

    /// Screen-space gradient `(d/dx, d/dy)` of the linear interpolation of
    /// per-vertex values `v`.
    pub fn gradient(&self, v: [f32; 3]) -> (f32, f32) {
        // Solve the plane equation through the three screen points.
        let (p0, p1, p2) = (self.screen[0], self.screen[1], self.screen[2]);
        let d10 = p1 - p0;
        let d20 = p2 - p0;
        let v10 = v[1] - v[0];
        let v20 = v[2] - v[0];
        let ddx = (v10 * d20.y - v20 * d10.y) / self.area2;
        let ddy = (v20 * d10.x - v10 * d20.x) / self.area2;
        (ddx, ddy)
    }

    /// Interpolates a linear (non-perspective) value at barycentric `b`.
    pub fn interp_linear(v: [f32; 3], b: (f32, f32, f32)) -> f32 {
        v[0] * b.0 + v[1] * b.1 + v[2] * b.2
    }

    /// Perspective-correct uv, camera-angle cosine, and uv screen-space
    /// derivatives at barycentric `b`.
    ///
    /// Returns `(uv, duv_dx, duv_dy, view_cos)`, uv in normalized texture
    /// space and derivatives per pixel step.
    pub fn shade_point(&self, b: (f32, f32, f32)) -> (Vec2, Vec2, Vec2, f32) {
        let inv_w = Self::interp_linear(self.inv_w, b).max(1e-12);
        let w = 1.0 / inv_w;
        let uw = Vec2::new(
            Self::interp_linear(
                [
                    self.uv_over_w[0].x,
                    self.uv_over_w[1].x,
                    self.uv_over_w[2].x,
                ],
                b,
            ),
            Self::interp_linear(
                [
                    self.uv_over_w[0].y,
                    self.uv_over_w[1].y,
                    self.uv_over_w[2].y,
                ],
                b,
            ),
        );
        let uv = uw * w;
        let view_cos = (Self::interp_linear(self.cos_over_w, b) * w).clamp(0.0, 1.0);

        // d(u)/dx = (d(u/w)/dx - u * d(1/w)/dx) * w, and likewise for the
        // other three derivatives: the quotient rule applied to
        // u = (u/w)/(1/w).
        let (diw_dx, diw_dy) = self.gradient(self.inv_w);
        let (duw_dx, duw_dy) = self.gradient([
            self.uv_over_w[0].x,
            self.uv_over_w[1].x,
            self.uv_over_w[2].x,
        ]);
        let (dvw_dx, dvw_dy) = self.gradient([
            self.uv_over_w[0].y,
            self.uv_over_w[1].y,
            self.uv_over_w[2].y,
        ]);
        let duv_dx = Vec2::new((duw_dx - uv.x * diw_dx) * w, (dvw_dx - uv.y * diw_dx) * w);
        let duv_dy = Vec2::new((duw_dy - uv.x * diw_dy) * w, (dvw_dy - uv.y * diw_dy) * w);
        (uv, duv_dx, duv_dy, view_cos)
    }

    /// Depth at barycentric `b` (screen-space linear, as hardware does).
    pub fn depth(&self, b: (f32, f32, f32)) -> f32 {
        Self::interp_linear(self.z, b)
    }

    /// Minimum vertex depth — the conservative value hierarchical Z tests
    /// against a tile's stored maximum.
    pub fn min_depth(&self) -> f32 {
        self.z[0].min(self.z[1]).min(self.z[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimgfx_types::Vec4;

    fn unit_tri() -> [ClipVertex; 3] {
        // An on-screen triangle in NDC, w = 1 everywhere (no perspective).
        [
            ClipVertex::new(Vec4::new(-0.5, -0.5, 0.0, 1.0), Vec2::new(0.0, 0.0), 1.0),
            ClipVertex::new(Vec4::new(0.5, -0.5, 0.0, 1.0), Vec2::new(1.0, 0.0), 1.0),
            ClipVertex::new(Vec4::new(0.0, 0.5, 0.0, 1.0), Vec2::new(0.5, 1.0), 1.0),
        ]
    }

    #[test]
    fn setup_computes_bbox_inside_viewport() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).expect("valid triangle");
        assert!(s.bbox.x0 >= 0 && s.bbox.x1 <= 100);
        assert!(!s.bbox.is_empty());
        assert!(s.area2 > 0.0);
    }

    #[test]
    fn degenerate_triangle_rejected() {
        let v = ClipVertex::new(Vec4::new(0.0, 0.0, 0.0, 1.0), Vec2::ZERO, 1.0);
        assert!(TriangleSetup::new(&[v, v, v], 100, 100).is_none());
    }

    #[test]
    fn backfacing_triangle_is_flipped_not_dropped() {
        let t = unit_tri();
        let flipped = [t[0], t[2], t[1]];
        let s = TriangleSetup::new(&flipped, 100, 100).expect("two-sided");
        assert!(s.area2 > 0.0);
    }

    #[test]
    fn barycentric_centroid_is_inside() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).unwrap();
        // The screen centroid.
        let c = (s.screen[0] + s.screen[1] + s.screen[2]) / 3.0;
        let b = s.barycentric(c.x as i32, c.y as i32);
        assert!(TriangleSetup::inside(b));
        assert!((b.0 + b.1 + b.2 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn point_outside_fails_inside_test() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).unwrap();
        let b = s.barycentric(0, 0); // screen corner, outside the centered triangle
        assert!(!TriangleSetup::inside(b));
    }

    #[test]
    fn uv_interpolates_to_vertex_values_at_corners() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).unwrap();
        // Evaluate exactly at vertex 0's barycentric (1,0,0).
        let (uv, _, _, cos) = s.shade_point((1.0, 0.0, 0.0));
        assert!(
            (uv.x - 0.0).abs() < 1e-5,
            "vertex 0 keeps its slot after winding fix"
        );
        assert!((cos - 1.0).abs() < 1e-5);
        // Winding may have been flipped; corners 1 and 2 carry the other
        // two vertex uvs in some order.
        let (uv1, _, _, _) = s.shade_point((0.0, 1.0, 0.0));
        let (uv2, _, _, _) = s.shade_point((0.0, 0.0, 1.0));
        let mut xs = [uv1.x, uv2.x];
        xs.sort_by(f32::total_cmp);
        assert!((xs[0] - 0.5).abs() < 1e-5 && (xs[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_of_linear_function_is_exact() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).unwrap();
        // Build per-vertex values of the linear function f = 2x + 3y + 1
        // over screen coordinates; the gradient must come back (2, 3).
        let v = [
            2.0 * s.screen[0].x + 3.0 * s.screen[0].y + 1.0,
            2.0 * s.screen[1].x + 3.0 * s.screen[1].y + 1.0,
            2.0 * s.screen[2].x + 3.0 * s.screen[2].y + 1.0,
        ];
        let (dx, dy) = s.gradient(v);
        assert!((dx - 2.0).abs() < 1e-3);
        assert!((dy - 3.0).abs() < 1e-3);
    }

    #[test]
    fn uv_derivatives_match_finite_differences() {
        // A perspective triangle: w varies across vertices.
        let tri = [
            ClipVertex::new(Vec4::new(-0.8, -0.8, 0.0, 1.0), Vec2::new(0.0, 0.0), 1.0),
            ClipVertex::new(Vec4::new(1.6, -1.6, 0.0, 2.0), Vec2::new(1.0, 0.0), 1.0),
            ClipVertex::new(Vec4::new(0.0, 1.5, 0.0, 1.5), Vec2::new(0.5, 1.0), 1.0),
        ];
        let s = TriangleSetup::new(&tri, 200, 200).unwrap();
        // Pick an interior pixel.
        let c = (s.screen[0] + s.screen[1] + s.screen[2]) / 3.0;
        let (px, py) = (c.x as i32, c.y as i32);
        let b = s.barycentric(px, py);
        assert!(TriangleSetup::inside(b));
        let (uv, duv_dx, duv_dy, _) = s.shade_point(b);
        let (uv_r, _, _, _) = s.shade_point(s.barycentric(px + 1, py));
        let (uv_d, _, _, _) = s.shade_point(s.barycentric(px, py + 1));
        assert!(
            (duv_dx.x - (uv_r.x - uv.x)).abs() < 5e-3,
            "{} vs {}",
            duv_dx.x,
            uv_r.x - uv.x
        );
        assert!((duv_dy.y - (uv_d.y - uv.y)).abs() < 5e-3);
    }

    #[test]
    fn min_depth_is_lower_bound() {
        let s = TriangleSetup::new(&unit_tri(), 100, 100).unwrap();
        let c = (s.screen[0] + s.screen[1] + s.screen[2]) / 3.0;
        let b = s.barycentric(c.x as i32, c.y as i32);
        assert!(s.depth(b) >= s.min_depth() - 1e-6);
    }
}
