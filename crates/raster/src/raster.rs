//! Tile-based scan conversion.

use crate::camera::Camera;
use crate::clip::clip_triangle;
use crate::fragment::Fragment;
use crate::setup::TriangleSetup;
use crate::vertex::Vertex;
use crate::zbuffer::{DepthBuffer, ZOutcome};
use pimgfx_types::{Radians, TextureId, TileCoord};

/// Counters produced while rasterizing (inputs to the timing layer and to
/// the geometry/Z rows of the Fig. 2 traffic breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterStats {
    /// Triangles submitted.
    pub triangles_in: u64,
    /// Triangles surviving clipping (counting splits).
    pub triangles_clipped: u64,
    /// Triangles rejected wholesale by hierarchical Z.
    pub hiz_rejected: u64,
    /// Per-pixel depth tests executed.
    pub z_tests: u64,
    /// Fragments that passed early Z and were emitted.
    pub fragments_out: u64,
    /// Screen tiles touched by emitted fragments.
    pub tiles_touched: u64,
}

/// The tile-based rasterizer: owns the depth buffer and walks triangles
/// tile by tile, emitting early-Z-surviving fragments.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug)]
pub struct Rasterizer {
    width: u32,
    height: u32,
    tile_px: u32,
    zbuffer: DepthBuffer,
    stats: RasterStats,
    bound_texture: TextureId,
}

impl Rasterizer {
    /// Table I tile size: 16×16 pixels.
    pub const DEFAULT_TILE_PX: u32 = 16;

    /// Creates a rasterizer for a `width`×`height` framebuffer with the
    /// default tile size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_tile_size(width, height, Self::DEFAULT_TILE_PX)
    }

    /// Creates a rasterizer with an explicit tile size.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_tile_size(width: u32, height: u32, tile_px: u32) -> Self {
        Self {
            width,
            height,
            tile_px,
            zbuffer: DepthBuffer::new(width, height, tile_px),
            stats: RasterStats::default(),
            bound_texture: TextureId::new(0),
        }
    }

    /// Framebuffer width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Framebuffer height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Tile edge in pixels.
    pub fn tile_px(&self) -> u32 {
        self.tile_px
    }

    /// Binds the texture subsequent fragments will reference.
    pub fn bind_texture(&mut self, tex: TextureId) {
        self.bound_texture = tex;
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &RasterStats {
        &self.stats
    }

    /// Read access to the depth buffer (for ROP/traffic modeling).
    pub fn depth_buffer(&self) -> &DepthBuffer {
        &self.zbuffer
    }

    /// Clears depth and statistics for a new frame.
    pub fn begin_frame(&mut self) {
        self.zbuffer.clear();
        self.stats = RasterStats::default();
    }

    /// Transforms, clips, and scans one triangle; returns the surviving
    /// fragments in tile-major order.
    pub fn rasterize(&mut self, camera: &Camera, tri: &[Vertex; 3]) -> Vec<Fragment> {
        self.stats.triangles_in += 1;
        let clipped = clip_triangle(camera.transform_triangle(tri));
        let mut out = Vec::new();
        for sub in clipped {
            self.stats.triangles_clipped += 1;
            if let Some(setup) = TriangleSetup::new(&sub, self.width, self.height) {
                self.scan(&setup, &mut out);
            }
        }
        out
    }

    /// Scans a prepared triangle tile by tile.
    fn scan(&mut self, setup: &TriangleSetup, out: &mut Vec<Fragment>) {
        // `out` is shared across the clipped sub-triangles of one
        // rasterize() call; count only the fragments this scan appends.
        let emitted_before = out.len();
        // Hierarchical Z: drop the whole triangle when every overlapped
        // tile is already covered by closer geometry.
        if self.zbuffer.hiz_reject(&setup.bbox, setup.min_depth()) {
            self.stats.hiz_rejected += 1;
            return;
        }

        let mut touched: Vec<TileCoord> = Vec::new();
        for tile in setup.bbox.tiles(self.tile_px) {
            let r = tile.pixel_rect(self.tile_px).intersect(&setup.bbox);
            let mut emitted_in_tile = false;
            for py in r.y0..r.y1 {
                for px in r.x0..r.x1 {
                    let b = setup.barycentric(px, py);
                    if !TriangleSetup::inside(b) {
                        continue;
                    }
                    let depth = setup.depth(b);
                    self.stats.z_tests += 1;
                    if self.zbuffer.test_and_update(px as u32, py as u32, depth) == ZOutcome::Fail {
                        continue;
                    }
                    let (uv, duv_dx, duv_dy, view_cos) = setup.shade_point(b);
                    out.push(Fragment {
                        x: px as u32,
                        y: py as u32,
                        depth,
                        uv,
                        duv_dx,
                        duv_dy,
                        camera_angle: Radians::new(view_cos.clamp(0.0, 1.0).acos()),
                        texture: self.bound_texture,
                    });
                    emitted_in_tile = true;
                }
            }
            if emitted_in_tile {
                self.zbuffer.refresh_tile_max(tile.tx, tile.ty);
                touched.push(tile);
            }
        }
        self.stats.fragments_out += (out.len() - emitted_before) as u64;
        self.stats.tiles_touched += touched.len() as u64;
        // Sync the z-test counter kept by the buffer.
        let (tests, _) = self.zbuffer.stats();
        self.stats.z_tests = tests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimgfx_types::{Vec2, Vec3};

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 3.0), Vec3::ZERO, Vec3::Y, 1.0, 1.0)
    }

    fn quad_tri(z: f32) -> [Vertex; 3] {
        [
            Vertex::new(Vec3::new(-1.0, -1.0, z), Vec3::Z, Vec2::new(0.0, 0.0)),
            Vertex::new(Vec3::new(1.0, -1.0, z), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(0.0, 1.0, z), Vec3::Z, Vec2::new(0.5, 1.0)),
        ]
    }

    #[test]
    fn onscreen_triangle_emits_fragments() {
        let mut r = Rasterizer::new(64, 64);
        let frags = r.rasterize(&cam(), &quad_tri(0.0));
        assert!(!frags.is_empty());
        assert_eq!(r.stats().fragments_out, frags.len() as u64);
        assert!(r.stats().tiles_touched >= 1);
        // All fragments are inside the viewport.
        assert!(frags.iter().all(|f| f.x < 64 && f.y < 64));
    }

    #[test]
    fn fragments_have_valid_interpolants() {
        let mut r = Rasterizer::new(64, 64);
        let frags = r.rasterize(&cam(), &quad_tri(0.0));
        for f in &frags {
            assert!(f.depth >= 0.0 && f.depth <= 1.0);
            assert!(f.uv.x >= -0.01 && f.uv.x <= 1.01, "uv {:?}", f.uv);
            assert!(f.camera_angle.as_f32() >= 0.0);
            assert!(f.camera_angle.as_f32() <= std::f32::consts::FRAC_PI_2 + 1e-4);
        }
    }

    #[test]
    fn clipped_triangles_do_not_double_count_fragments() {
        let mut r = Rasterizer::new(64, 64);
        // One vertex behind the camera: near-plane clipping splits the
        // triangle into two sub-triangles scanned into one output vec.
        let tri = [
            Vertex::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::Z, Vec2::ZERO),
            Vertex::new(Vec3::new(1.0, -1.0, 0.0), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(0.0, 1.0, 4.5), Vec3::Z, Vec2::new(0.5, 1.0)),
        ];
        let frags = r.rasterize(&cam(), &tri);
        assert!(
            r.stats().triangles_clipped >= 2,
            "triangle must actually split for this regression test"
        );
        assert_eq!(r.stats().fragments_out, frags.len() as u64);
    }

    #[test]
    fn occluded_triangle_emits_nothing() {
        let mut r = Rasterizer::new(64, 64);
        let front = r.rasterize(&cam(), &quad_tri(1.0)); // closer to camera
        assert!(!front.is_empty());
        let behind = r.rasterize(&cam(), &quad_tri(-1.0)); // strictly behind
                                                           // Early Z (plus HiZ) suppresses everything covered by the front tri.
        assert!(behind.len() < front.len() / 2);
    }

    #[test]
    fn hiz_rejects_after_coverage() {
        let mut r = Rasterizer::new(32, 32);
        // Two large triangles forming a near full-screen quad.
        let a = [
            Vertex::new(Vec3::new(-3.0, -3.0, 1.0), Vec3::Z, Vec2::ZERO),
            Vertex::new(Vec3::new(3.0, -3.0, 1.0), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(-3.0, 3.0, 1.0), Vec3::Z, Vec2::new(0.0, 1.0)),
        ];
        let b = [
            Vertex::new(Vec3::new(3.0, -3.0, 1.0), Vec3::Z, Vec2::new(1.0, 0.0)),
            Vertex::new(Vec3::new(3.0, 3.0, 1.0), Vec3::Z, Vec2::ONE),
            Vertex::new(Vec3::new(-3.0, 3.0, 1.0), Vec3::Z, Vec2::new(0.0, 1.0)),
        ];
        r.rasterize(&cam(), &a);
        r.rasterize(&cam(), &b);
        let before = r.stats().hiz_rejected;
        // A far triangle covered by the quad: HiZ should reject it whole.
        let far = r.rasterize(&cam(), &quad_tri(-2.0));
        assert!(far.is_empty());
        assert!(r.stats().hiz_rejected > before);
    }

    #[test]
    fn offscreen_triangle_is_clipped_away() {
        let mut r = Rasterizer::new(64, 64);
        let tri = [
            Vertex::new(Vec3::new(100.0, 100.0, 0.0), Vec3::Z, Vec2::ZERO),
            Vertex::new(Vec3::new(101.0, 100.0, 0.0), Vec3::Z, Vec2::ZERO),
            Vertex::new(Vec3::new(100.0, 101.0, 0.0), Vec3::Z, Vec2::ZERO),
        ];
        assert!(r.rasterize(&cam(), &tri).is_empty());
    }

    #[test]
    fn begin_frame_resets_depth() {
        let mut r = Rasterizer::new(64, 64);
        let first = r.rasterize(&cam(), &quad_tri(0.0)).len();
        let occluded = r.rasterize(&cam(), &quad_tri(-0.5)).len();
        assert!(occluded < first);
        r.begin_frame();
        let again = r.rasterize(&cam(), &quad_tri(-0.5)).len();
        assert!(again > occluded, "depth cleared, triangle visible again");
    }

    #[test]
    fn bound_texture_is_stamped_on_fragments() {
        let mut r = Rasterizer::new(64, 64);
        r.bind_texture(TextureId::new(42));
        let frags = r.rasterize(&cam(), &quad_tri(0.0));
        assert!(frags.iter().all(|f| f.texture == TextureId::new(42)));
    }

    #[test]
    fn fragment_count_roughly_matches_projected_area() {
        let mut r = Rasterizer::new(128, 128);
        let frags = r.rasterize(&cam(), &quad_tri(0.0));
        // The triangle spans roughly a third of a 128x128 viewport at
        // this camera distance; sanity-check the magnitude.
        assert!(frags.len() > 500, "got {}", frags.len());
        assert!(frags.len() < 128 * 128);
    }
}
