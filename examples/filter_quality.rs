//! Compare texture-filtering quality tiers on a worst-case pattern:
//! the exact EWA reference, the hardware-style probe filter, trilinear
//! with anisotropy disabled, and the A-TFIM approximation — rendering
//! each to an image and scoring it against the reference.
//!
//! ```text
//! cargo run --release --example filter_quality [-- <output-dir>]
//! ```

use pim_render::quality::{psnr, ssim, FrameImage};
use pim_render::texture::{ewa, MippedTexture, Sampler, SamplerConfig, TextureImage};
use pim_render::types::{Rgba, Vec2};

/// Render a synthetic "infinite checkered floor" by direct texture
/// sampling: each output row corresponds to a viewing distance, so the
/// anisotropy grows from top (isotropic) to bottom (extreme).
fn render_floor(
    width: u32,
    height: u32,
    tex: &MippedTexture,
    mut sample: impl FnMut(&MippedTexture, Vec2, Vec2, Vec2) -> Rgba,
) -> FrameImage {
    let h = height as f32;
    // v(y) = a·y + b·y² gives a perspective-like acceleration toward the
    // bottom with the exact analytic derivative dv/dy = a + 2·b·y, so
    // every filter is fed a footprint consistent with the mapping.
    let a = 0.2 / h;
    let b = 4.0 / (h * h);
    FrameImage::from_fn(width, height, |x, y| {
        let yf = y as f32;
        let u = x as f32 / width as f32;
        let v = a * yf + b * yf * yf;
        let dv_dy = a + 2.0 * b * yf;
        let duv_dx = Vec2::new(tex.width() as f32 / width as f32, 0.0);
        let duv_dy = Vec2::new(0.0, tex.height() as f32 * dv_dy);
        sample(tex, Vec2::new(u % 1.0, v % 1.0), duv_dx, duv_dy)
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/filters".to_string());
    std::fs::create_dir_all(&out_dir)?;

    // The classic filtering torture test: a fine checkerboard.
    let tex = MippedTexture::with_full_chain(TextureImage::from_fn(256, 256, |x, y| {
        if (x / 8 + y / 8) % 2 == 0 {
            Rgba::WHITE
        } else {
            Rgba::gray(0.1)
        }
    }));
    let (w, h) = (320, 240);

    // Ground truth: exact elliptical integration.
    let reference = render_floor(w, h, &tex, |t, uv, dx, dy| ewa::filter(t, uv, dx, dy, 16).0);
    reference.save_ppm(format!("{out_dir}/ewa_reference.ppm"))?;

    println!("{:<26} {:>10} {:>8}", "filter", "PSNR dB", "SSIM");
    let score = |name: &str, img: &FrameImage| -> Result<(), Box<dyn std::error::Error>> {
        println!(
            "{:<26} {:>10.1} {:>8.3}",
            name,
            psnr(&reference, img)?,
            ssim(&reference, img)?
        );
        Ok(())
    };

    // Hardware-style anisotropic probes (what the baseline GPU runs).
    let aniso = Sampler::new(SamplerConfig::default());
    let img = render_floor(w, h, &tex, |t, uv, dx, dy| {
        aniso.sample(t, uv, dx, dy).color
    });
    img.save_ppm(format!("{out_dir}/probes_16x.ppm"))?;
    score("anisotropic probes 16x", &img)?;

    // The A-TFIM reordered form (must match the probes exactly).
    let reordered = Sampler::new(SamplerConfig {
        reordered: true,
        ..SamplerConfig::default()
    });
    let img = render_floor(w, h, &tex, |t, uv, dx, dy| {
        reordered.sample(t, uv, dx, dy).color
    });
    img.save_ppm(format!("{out_dir}/atfim_reordered.ppm"))?;
    score("a-tfim reordered (exact)", &img)?;

    // Anisotropy capped at 4x (mid-quality setting).
    let aniso4 = Sampler::new(SamplerConfig {
        max_aniso: 4,
        ..SamplerConfig::default()
    });
    let img = render_floor(w, h, &tex, |t, uv, dx, dy| {
        aniso4.sample(t, uv, dx, dy).color
    });
    img.save_ppm(format!("{out_dir}/probes_4x.ppm"))?;
    score("anisotropic probes 4x", &img)?;

    // Anisotropy disabled: trilinear over the blurred major axis — the
    // Fig. 4 configuration. Far rows go visibly muddy.
    let trilinear = Sampler::new(SamplerConfig {
        max_aniso: 1,
        ..SamplerConfig::default()
    });
    let img = render_floor(w, h, &tex, |t, uv, dx, dy| {
        trilinear.sample(t, uv, dx, dy).color
    });
    img.save_ppm(format!("{out_dir}/aniso_off.ppm"))?;
    score("anisotropic off (blurry)", &img)?;

    println!("\nimages written to {out_dir}/ — compare the lower (grazing) half");
    Ok(())
}
