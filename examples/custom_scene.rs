//! Build a scene from scratch with the public API — no game profile —
//! and run it through the simulator. Shows how downstream users drive
//! the library with their own geometry, textures, and camera path.
//!
//! ```text
//! cargo run --release --example custom_scene
//! ```

use pim_render::pimgfx::{Design, SimConfig, Simulator};
use pim_render::raster::{Camera, Vertex};
use pim_render::texture::{MippedTexture, TextureImage};
use pim_render::types::{Rgba, TextureId, Vec2, Vec3};
use pim_render::workloads::{DrawCall, Game, Resolution, SceneTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A procedural texture: concentric rings (high-frequency content
    //    that makes filtering quality visible).
    let rings = TextureImage::from_fn(256, 256, |x, y| {
        let dx = x as f32 - 128.0;
        let dy = y as f32 - 128.0;
        let d = (dx * dx + dy * dy).sqrt();
        if ((d / 12.0) as u32).is_multiple_of(2) {
            Rgba::new(0.9, 0.6, 0.1, 1.0)
        } else {
            Rgba::new(0.1, 0.2, 0.6, 1.0)
        }
    });
    let texture = MippedTexture::with_full_chain(rings).with_id(TextureId::new(0));

    // 2. A single large ground quad, viewed at a grazing angle — the
    //    worst case for anisotropic filtering.
    let quad = |a: Vec3, b: Vec3, c: Vec3, d: Vec3| -> Vec<[Vertex; 3]> {
        let uv = |u: f32, v: f32| Vec2::new(u, v);
        let n = Vec3::Y;
        vec![
            [
                Vertex::new(a, n, uv(0.0, 0.0)),
                Vertex::new(b, n, uv(4.0, 0.0)),
                Vertex::new(c, n, uv(4.0, 4.0)),
            ],
            [
                Vertex::new(a, n, uv(0.0, 0.0)),
                Vertex::new(c, n, uv(4.0, 4.0)),
                Vertex::new(d, n, uv(0.0, 4.0)),
            ],
        ]
    };
    let ground = quad(
        Vec3::new(-20.0, 0.0, 5.0),
        Vec3::new(20.0, 0.0, 5.0),
        Vec3::new(20.0, 0.0, -120.0),
        Vec3::new(-20.0, 0.0, -120.0),
    );

    // 3. A low camera skimming the plane.
    let cameras = (0..3)
        .map(|i| {
            let eye = Vec3::new(0.0, 0.8, -2.0 * i as f32);
            Camera::look_at(
                eye,
                eye + Vec3::new(0.0, -0.05, -1.0),
                Vec3::Y,
                std::f32::consts::FRAC_PI_3,
                320.0 / 240.0,
            )
        })
        .collect();

    let scene = SceneTrace {
        workload: Game::Doom3.into(), // label only; the content is fully custom
        resolution: Resolution::R320x240,
        textures: vec![texture],
        draws: vec![DrawCall {
            triangles: ground,
            texture: TextureId::new(0),
        }],
        cameras,
        shader_alu_ops: 64,
    };

    // 4. Simulate baseline vs A-TFIM on the custom scene.
    let mut base_sim = Simulator::new(SimConfig::default())?;
    let base = base_sim.render_trace(&scene)?;
    let mut atfim_sim = Simulator::new(SimConfig::builder().design(Design::ATfim).build()?)?;
    let atfim = atfim_sim.render_trace(&scene)?;

    println!(
        "custom grazing-plane scene ({} frames):",
        scene.frame_count()
    );
    println!("  baseline: {} cycles", base.total_cycles);
    println!(
        "  a-tfim  : {} cycles ({:.2}x)",
        atfim.total_cycles,
        atfim.render_speedup_vs(&base)
    );
    println!(
        "  filtering speedup: {:.2}x (mean aniso work {:.1} texels/sample)",
        atfim.texture_speedup_vs(&base),
        base.texture.conventional_texels as f64 / base.texture.samples.max(1) as f64
    );
    base.image.save_ppm("target/custom_baseline.ppm")?;
    atfim.image.save_ppm("target/custom_atfim.ppm")?;
    println!("  frames written to target/custom_*.ppm");
    Ok(())
}
