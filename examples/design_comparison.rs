//! Compare all four design points of the paper on one benchmark column,
//! printing the per-design metrics behind Figs. 10–13.
//!
//! ```text
//! cargo run --release --example design_comparison [-- <game> <WxH> <frames>]
//! ```
//!
//! Games: doom3, fear, hl2, riddick, wolf. Resolutions: 320x240,
//! 640x480, 1280x1024 (must be a Table II combination).

use pim_render::mem::TrafficClass;
use pim_render::pimgfx::{Design, SimConfig, Simulator};
use pim_render::workloads::{build_scene, Game, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let game = match args.first().map(String::as_str) {
        Some("fear") => Game::Fear,
        Some("hl2") => Game::HalfLife2,
        Some("riddick") => Game::Riddick,
        Some("wolf") => Game::Wolfenstein,
        _ => Game::Doom3,
    };
    let resolution = match args.get(1).map(String::as_str) {
        Some("640x480") => Resolution::R640x480,
        Some("1280x1024") => Resolution::R1280x1024,
        _ => Resolution::R320x240,
    };
    let frames = args.get(2).and_then(|f| f.parse().ok()).unwrap_or(2);

    let scene = build_scene(game, resolution, frames);
    println!("benchmark {game}-{resolution}, {frames} frames\n");
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "design", "cycles", "tex latency", "tex traffic", "total MB", "energy nJ"
    );

    let mut baseline_cycles = 0u64;
    for design in Design::ALL {
        let config = SimConfig::builder().design(design).build()?;
        let mut sim = Simulator::new(config)?;
        let r = sim.render_trace(&scene)?;
        if design == Design::Baseline {
            baseline_cycles = r.total_cycles;
        }
        println!(
            "{:<10} {:>10} {:>11.1} cy {:>14} {:>11.2} {:>12.0}",
            design.label(),
            r.total_cycles,
            r.texture.avg_latency(),
            r.traffic.bytes(TrafficClass::TextureFetch).to_string(),
            r.traffic.total().as_mib(),
            r.energy.total_nj(),
        );
    }
    println!("\n(baseline renders the trace in {baseline_cycles} GPU cycles; smaller is faster)");
    Ok(())
}
