//! Workload characterization: print the per-column statistics that
//! drive the paper's results — triangle counts, texture working sets,
//! fragment volumes, and the anisotropy-ratio distribution each scene
//! presents to the texture units.
//!
//! ```text
//! cargo run --release --example workload_stats
//! ```

use pim_render::pimgfx::{SimConfig, Simulator};
use pim_render::workloads::{build_scene, Game};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<18} {:>6} {:>5} {:>9} {:>10} {:>10} {:>6} {:>26}",
        "benchmark",
        "tris",
        "texs",
        "tex MiB",
        "fragments",
        "texels/smp",
        "aniso",
        "ratio histogram 1/2/4/8/16"
    );
    for (game, res) in Game::benchmark_matrix() {
        let scene = build_scene(game, res, 1);
        let tex_mib: f64 = scene
            .textures
            .iter()
            .map(|t| t.total_texels() as f64 * 4.0)
            .sum::<f64>()
            / (1024.0 * 1024.0);
        let mut sim = Simulator::new(SimConfig::default())?;
        let r = sim.render_trace(&scene)?;
        let h = r.texture.aniso_histogram;
        let total: u64 = h.iter().sum::<u64>().max(1);
        println!(
            "{:<18} {:>6} {:>5} {:>9.1} {:>10} {:>10.1} {:>5.1}x {:>5.0}/{:>4.0}/{:>4.0}/{:>4.0}/{:>3.0}%",
            format!("{game}-{res}"),
            scene.triangles_per_frame(),
            scene.textures.len(),
            tex_mib,
            r.raster.fragments_out,
            r.texture.conventional_texels as f64 / r.texture.samples.max(1) as f64,
            r.texture.mean_aniso_ratio(),
            h[0] as f64 * 100.0 / total as f64,
            h[1] as f64 * 100.0 / total as f64,
            h[2] as f64 * 100.0 / total as f64,
            h[3] as f64 * 100.0 / total as f64,
            h[4] as f64 * 100.0 / total as f64,
        );
    }
    println!("\n(texels/smp = conventional texel volume per sample; aniso = mean applied ratio)");
    Ok(())
}
