//! Capture a workload to a `PGTR` trace file, reload it, and verify the
//! replay is bit-identical — the workflow the paper's ATTILA traces
//! enable for its commercial-game workloads.
//!
//! ```text
//! cargo run --release --example trace_replay [-- <trace-path>]
//! ```

use pim_render::pimgfx::{SimConfig, Simulator};
use pim_render::quality::psnr;
use pim_render::workloads::{build_scene, trace_io, Game, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/wolf_640.pgtr".to_string());

    // 1. Capture: generate the workload and archive it.
    let scene = build_scene(Game::Wolfenstein, Resolution::R640x480, 2);
    let file = std::fs::File::create(&path)?;
    trace_io::save_trace(&scene, file)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "captured {path}: {:.2} MiB ({} draws, {} textures, {} frames)",
        bytes as f64 / (1024.0 * 1024.0),
        scene.draws.len(),
        scene.textures.len(),
        scene.frame_count()
    );

    // 2. Replay: load the archived trace and render it.
    let replayed = trace_io::load_trace(std::fs::File::open(&path)?)?;
    let mut original_sim = Simulator::new(SimConfig::default())?;
    let original = original_sim.render_trace(&scene)?;
    let mut replay_sim = Simulator::new(SimConfig::default())?;
    let replay = replay_sim.render_trace(&replayed)?;

    // 3. The replay must be indistinguishable from the live workload.
    println!(
        "original: {} cycles | replay: {} cycles",
        original.total_cycles, replay.total_cycles
    );
    println!(
        "image match: {:.1} dB PSNR (99.0 = bit-identical)",
        psnr(&original.image, &replay.image)?
    );
    assert_eq!(
        original.total_cycles, replay.total_cycles,
        "timing must replay exactly"
    );
    assert_eq!(original.traffic.total(), replay.traffic.total());
    assert_eq!(psnr(&original.image, &replay.image)?, 99.0);
    println!("replay verified bit-identical");
    Ok(())
}
