//! Quickstart: render one game walkthrough under the baseline GPU and
//! the A-TFIM PIM design, and compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pim_render::pimgfx::{Design, SimConfig, Simulator};
use pim_render::quality::psnr;
use pim_render::workloads::{build_scene, Game, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-frame walkthrough of the Doom 3-like corridor at 320x240.
    let scene = build_scene(Game::Doom3, Resolution::R320x240, 2);
    println!(
        "scene: {} triangles/frame, {} textures, {} frames at {}x{}",
        scene.triangles_per_frame(),
        scene.textures.len(),
        scene.frame_count(),
        scene.width(),
        scene.height()
    );

    // Baseline: conventional GPU with GDDR5.
    let mut baseline = Simulator::new(SimConfig::default())?;
    let base = baseline.render_trace(&scene)?;
    println!("\n--- baseline ---\n{base}");

    // A-TFIM: anisotropic filtering reordered into the HMC logic layer.
    let config = SimConfig::builder().design(Design::ATfim).build()?;
    let mut atfim = Simulator::new(config)?;
    let fast = atfim.render_trace(&scene)?;
    println!("\n--- a-tfim ---\n{fast}");

    println!("\nrender speedup   : {:.2}x", fast.render_speedup_vs(&base));
    println!("filtering speedup: {:.2}x", fast.texture_speedup_vs(&base));
    println!(
        "texture traffic  : {:.2}x",
        fast.traffic_normalized_to(&base)
    );
    println!(
        "energy           : {:.2}x",
        fast.energy_normalized_to(&base)
    );
    println!(
        "image quality    : {:.1} dB PSNR",
        psnr(&base.image, &fast.image)?
    );
    Ok(())
}
