//! Sweep the A-TFIM camera-angle threshold and measure the
//! performance–quality tradeoff (the experiment behind Figs. 14–16),
//! writing the rendered frames as PPM images for visual inspection.
//!
//! ```text
//! cargo run --release --example quality_sweep [-- <output-dir>]
//! ```

use pim_render::pimgfx::{Design, SimConfig, Simulator};
use pim_render::quality::psnr;
use pim_render::workloads::{build_scene, Game, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/quality".to_string());
    std::fs::create_dir_all(&out_dir)?;

    let scene = build_scene(Game::Fear, Resolution::R320x240, 2);

    // Reference image from the exact baseline.
    let mut baseline = Simulator::new(SimConfig::default())?;
    let base = baseline.render_trace(&scene)?;
    base.image.save_ppm(format!("{out_dir}/baseline.ppm"))?;

    println!(
        "{:<14} {:>14} {:>10} {:>14}",
        "threshold", "render speedup", "PSNR dB", "recalc rate"
    );
    for fraction in [0.005f32, 0.01, 0.05, 0.1] {
        let config = SimConfig::builder()
            .design(Design::ATfim)
            .angle_threshold_pi_fraction(fraction)
            .build()?;
        let mut sim = Simulator::new(config)?;
        let r = sim.render_trace(&scene)?;
        let name = format!("{out_dir}/atfim_{fraction}pi.ppm");
        r.image.save_ppm(&name)?;
        let probes = r.texture.l1_hits + r.texture.l1_misses + r.texture.l1_angle_misses;
        let recalc = if probes == 0 {
            0.0
        } else {
            r.texture.l1_angle_misses as f64 / probes as f64
        };
        println!(
            "{:<14} {:>13.2}x {:>10.1} {:>13.2}%",
            format!("{fraction}pi"),
            r.render_speedup_vs(&base),
            psnr(&base.image, &r.image)?,
            recalc * 100.0
        );
    }

    // No recalculation at all: fastest, lowest quality.
    let config = SimConfig::builder()
        .design(Design::ATfim)
        .no_recalculation()
        .build()?;
    let mut sim = Simulator::new(config)?;
    let r = sim.render_trace(&scene)?;
    r.image.save_ppm(format!("{out_dir}/atfim_no_recalc.ppm"))?;
    println!(
        "{:<14} {:>13.2}x {:>10.1} {:>13.2}%",
        "no-recalc",
        r.render_speedup_vs(&base),
        psnr(&base.image, &r.image)?,
        0.0
    );

    println!("\nframes written to {out_dir}/ (PPM, viewable with any image tool)");
    Ok(())
}
