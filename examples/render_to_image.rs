//! Render every game's walkthrough frame to a PPM image — a visual
//! sanity check of the functional renderer (floor, ceiling, walls,
//! props, and mipmapped/anisotropic filtering should all be visible).
//!
//! ```text
//! cargo run --release --example render_to_image [-- <output-dir>]
//! ```

use pim_render::pimgfx::{SimConfig, Simulator};
use pim_render::workloads::{build_scene, Game, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/frames".to_string());
    std::fs::create_dir_all(&out_dir)?;

    for game in Game::ALL {
        // Render each title at its smallest Table II resolution to keep
        // the example fast.
        let res = *game
            .profile()
            .resolutions
            .iter()
            .min()
            .expect("every game has at least one resolution");
        let scene = build_scene(game, res, 1);
        let mut sim = Simulator::new(SimConfig::default())?;
        let report = sim.render_trace(&scene)?;
        let path = format!("{out_dir}/{game}_{res}.ppm");
        report.image.save_ppm(&path)?;
        println!(
            "{path}: {} fragments, mean luma {:.3}",
            report.raster.fragments_out,
            report.image.mean_luma()
        );
        assert!(report.image.mean_luma() > 0.01, "frame should not be black");
    }
    println!("\nframes written to {out_dir}/");
    Ok(())
}

#[allow(dead_code)]
fn res_label(r: Resolution) -> String {
    r.to_string()
}
